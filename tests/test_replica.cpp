// Replicated read tier (query/oplog.h + query/replica.h). The core
// contract under test is the convergence oracle: replaying the primary's
// op log into a fresh replica yields BYTE-IDENTICAL k-NN / range-box /
// range-ball results at every epoch boundary — not merely
// distance-equivalent (ties must break the same way, because replay
// re-issues the primary's exact backend-call sequence and therefore
// rebuilds the same tree). Covered across all three backends and all
// three drain modes, plus the write paths that do not come from clients:
// TTL-expiry sweeps and stripe rebalances. On top sit the router
// semantics: writes to the primary, reads scattered under the staleness
// bound, read-your-writes via commit_epoch floors, and primary fallback
// when no replica qualifies.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "query/oplog.h"
#include "query/query_service.h"
#include "query/replica.h"
#include "query/workload.h"

using namespace pargeo;
using query::backend;
using query::drain_mode;
using query::log_group;
using query::log_op;
using query::log_origin;
using query::log_record;
using query::op_log;
using query::replica_router;
using query::replica_set;
using query::shard_policy;

namespace {

point<2> pt(double x, double y) {
  point<2> p;
  p[0] = x;
  p[1] = y;
  return p;
}

template <class Pred>
void wait_until(Pred&& pred, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      FAIL() << "timed out waiting for: " << what;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// A probe batch whose answers are sensitive to both membership and tree
// structure: two k-NN queries (tie order exposes build differences), a
// box, and a ball.
std::vector<query::request<2>> probe_batch() {
  std::vector<query::request<2>> reqs;
  reqs.push_back(query::request<2>::make_knn(pt(0.5, 0.5), 8));
  reqs.push_back(query::request<2>::make_knn(pt(0.1, 0.9), 3));
  reqs.push_back(query::request<2>::make_range(
      aabb<2>(pt(0.2, 0.2), pt(0.8, 0.8))));
  reqs.push_back(query::request<2>::make_ball(pt(0.5, 0.5), 0.3));
  return reqs;
}

// The oracle compares raw point vectors with operator== — deliberately
// NOT testutil::expect_same_responses, which tolerates k-NN tie
// divergence. Replicas owe the primary exact bytes.
std::vector<std::vector<point<2>>> rows(
    const std::vector<query::response<2>>& responses) {
  std::vector<std::vector<point<2>>> out;
  out.reserve(responses.size());
  for (const auto& resp : responses) out.push_back(resp.points);
  return out;
}

void expect_replica_matches_primary(query::query_service<2>& primary,
                                    query::query_service<2>& replica,
                                    const char* at) {
  const auto want = rows(primary.execute(probe_batch()).responses);
  const auto got = rows(replica.execute(probe_batch()).responses);
  EXPECT_EQ(got, want) << "probe divergence " << at;
}

void expect_same_resident_set(query::query_service<2>& primary,
                              query::query_service<2>& replica,
                              const char* at) {
  auto want = primary.gather();
  auto got = replica.gather();
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want) << "resident-set divergence " << at;
}

class ReplicaConvergence
    : public ::testing::TestWithParam<std::tuple<backend, drain_mode>> {};

// Drive a churn stream through the primary one batch (= one epoch) at a
// time; after every commit, pump a tail-less replica to the log head and
// demand byte-identical probe answers. This is the oracle at EVERY epoch
// boundary, not just the end state.
TEST_P(ReplicaConvergence, ByteIdenticalAtEveryEpochBoundary) {
  auto spec = query::make_churn_spec(400, 960, 0.25, 0.30);
  spec.seed = 29;
  const auto initial = query::make_initial<2>(spec);
  const auto reqs = query::make_requests<2>(spec, initial);

  query::service_config cfg;
  cfg.backend = std::get<0>(GetParam());
  cfg.drain = std::get<1>(GetParam());
  cfg.shards = 4;
  cfg.policy = shard_policy::hash;

  auto log = std::make_shared<op_log<2>>();
  query::query_service<2> primary(cfg);
  primary.attach_log(log);
  primary.bootstrap(initial);
  ASSERT_EQ(log->head(), 1u) << "bootstrap must commit as epoch 1";

  replica_set<2> reps(log, cfg, 1, /*start_tails=*/false);
  reps.pump();
  expect_replica_matches_primary(primary, reps.replica(0), "after bootstrap");

  const std::size_t batch = 48;
  for (std::size_t off = 0; off < reqs.size(); off += batch) {
    const std::size_t end = std::min(reqs.size(), off + batch);
    primary.execute(std::vector<query::request<2>>(reqs.begin() + off,
                                                   reqs.begin() + end));
    reps.pump();
    EXPECT_EQ(reps.applied_epoch(0), log->head());
    expect_replica_matches_primary(primary, reps.replica(0),
                                   "at epoch boundary");
    if (HasFatalFailure() || HasNonfatalFailure()) break;
  }
  expect_same_resident_set(primary, reps.replica(0), "at end of stream");

  const auto rst = reps.replica(0).stats();
  EXPECT_GT(rst.replayed_groups, 1u);
  EXPECT_GT(rst.replayed_records, 0u);
  EXPECT_EQ(rst.replay_errors, 0u);
  EXPECT_EQ(rst.applied_epoch, log->head());
  EXPECT_EQ(primary.stats().log_epoch, log->head());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ReplicaConvergence,
    ::testing::Combine(::testing::Values(backend::kdtree, backend::zdtree,
                                         backend::bdltree),
                       ::testing::Values(drain_mode::per_shard,
                                         drain_mode::single,
                                         drain_mode::stealing)),
    [](const auto& info) {
      return std::string(query::backend_name(std::get<0>(info.param))) + "_" +
             query::drain_mode_name(std::get<1>(info.param));
    });

// TTL expiry is a write the client never submitted: the primary's sweep
// must land in the log as origin=expire erase groups and replay into the
// replica (whose own TTL machinery is disabled) byte-identically.
TEST(ReplicaReplay, TtlExpirySweepsReplicate) {
  auto clock = std::make_shared<std::atomic<std::uint64_t>>(1);
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  cfg.point_ttl_ns = 1000;
  cfg.ttl_now = [clock] { return clock->load(); };

  auto log = std::make_shared<op_log<2>>();
  query::query_service<2> primary(cfg);
  primary.attach_log(log);
  std::vector<point<2>> boot;
  for (int i = 0; i < 64; ++i) boot.push_back(pt((i % 8) / 8.0, (i / 8) / 8.0));
  primary.bootstrap(boot);

  clock->store(500);
  primary.execute({query::request<2>::make_insert(pt(0.5, 0.5))});  // ~1500
  clock->store(1200);  // bootstrap points due, the insert not yet
  wait_until([&] { return primary.stats().expired_points >= 64; },
             "TTL sweep retires the bootstrap points");
  // The sweep's erase group is logged before the lane fan-out and the
  // counter bumps at dispatch, so the log (and a pumped replica) can
  // briefly run AHEAD of the primary's own backends. A completed read
  // batch is a barrier: it scatters to every shard behind the expire
  // group in lane order, so its completion implies the sweep applied.
  primary.execute({query::request<2>::make_knn(pt(0.5, 0.5), 1)});
  primary.wait_lanes_idle();

  bool saw_expire_group = false;
  for (const auto& g : log->read_from(0)) {
    if (g.origin == log_origin::expire) {
      saw_expire_group = true;
      for (const auto& r : g.records) EXPECT_EQ(r.kind, log_op::erase);
    }
  }
  EXPECT_TRUE(saw_expire_group) << "sweep must be logged as origin=expire";

  replica_set<2> reps(log, cfg, 1, /*start_tails=*/false);
  reps.pump();
  expect_same_resident_set(primary, reps.replica(0), "after expiry replay");
  expect_replica_matches_primary(primary, reps.replica(0),
                                 "after expiry replay");
  // The replica's own expiry machinery must stay off: its config has no
  // clock, so the surviving point only ever leaves via a logged sweep.
  EXPECT_EQ(reps.replica(0).stats().expired_points, 0u);
}

// Stripe rebalancing migrates points between shards and swaps bounds —
// both must replicate (a replica pruning reads under stale bounds would
// answer from the wrong shards).
TEST(ReplicaReplay, StripeRebalanceReplicates) {
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 4;
  cfg.policy = shard_policy::spatial;
  cfg.drain = drain_mode::per_shard;
  cfg.rebalance_threshold = 1.2;

  auto log = std::make_shared<op_log<2>>();
  query::query_service<2> primary(cfg);
  primary.attach_log(log);
  std::vector<point<2>> boot;
  for (int i = 0; i < 256; ++i) {
    boot.push_back(pt((i % 16) / 16.0, (i / 16) / 16.0));
  }
  primary.bootstrap(boot);

  // Pile inserts into one corner stripe until the skew trips a rebalance.
  std::size_t burst = 0;
  while (primary.stats().rebalances == 0 && burst < 64) {
    std::vector<query::request<2>> b;
    for (int i = 0; i < 32; ++i) {
      b.push_back(query::request<2>::make_insert(
          pt(0.01 + 0.001 * double(burst), 0.01 + 0.0001 * i)));
    }
    primary.execute(std::move(b));
    ++burst;
  }
  ASSERT_GE(primary.stats().rebalances, 1u) << "skew burst must rebalance";
  // A second rebalance can fire at the drain boundary right after the
  // final burst group, concurrent with the comparison below. A completed
  // read batch is a barrier: the drain thread is past that boundary once
  // it serves the read, and a read boundary adds no writes, so no
  // further rebalance can trigger afterwards.
  primary.execute({query::request<2>::make_knn(pt(0.5, 0.5), 1)});
  primary.wait_lanes_idle();

  bool saw_rebalance_group = false;
  for (const auto& g : log->read_from(0)) {
    if (g.origin == log_origin::rebalance) {
      saw_rebalance_group = true;
      EXPECT_TRUE(g.has_bounds) << "rebalance group must carry new bounds";
    }
  }
  EXPECT_TRUE(saw_rebalance_group);

  replica_set<2> reps(log, cfg, 1, /*start_tails=*/false);
  reps.pump();
  expect_same_resident_set(primary, reps.replica(0), "after rebalance replay");
  expect_replica_matches_primary(primary, reps.replica(0),
                                 "after rebalance replay");
  // The replica never rebalances on its own — it replays the primary's.
  EXPECT_EQ(reps.replica(0).stats().rebalances, 0u);
}

// ---- replay plumbing ------------------------------------------------------

TEST(ReplicaReplay, RejectsRecordsForUnknownShards) {
  query::service_config cfg;
  cfg.shards = 2;
  query::query_service<2> service(cfg);
  service.bootstrap({pt(0, 0)});

  log_group<2> g;
  g.epoch = 1;
  log_record<2> r;
  r.shard = 7;  // log from a wider topology
  r.kind = log_op::insert;
  r.pts = {pt(1, 1)};
  g.records.push_back(std::move(r));
  EXPECT_THROW(service.apply_replayed(std::move(g)), std::invalid_argument);
}

TEST(ReplicaSet, PumpWithLiveTailsThrows) {
  auto log = std::make_shared<op_log<2>>();
  query::service_config cfg;
  cfg.shards = 2;
  replica_set<2> reps(log, cfg, 1, /*start_tails=*/true);
  EXPECT_THROW(reps.pump(), std::logic_error);
  reps.close();
}

TEST(ReplicaSet, NullLogRejected) {
  query::service_config cfg;
  EXPECT_THROW(replica_set<2>(nullptr, cfg, 1), std::invalid_argument);
}

// ---- router ---------------------------------------------------------------

TEST(ReplicaRouter, ReadYourWritesViaCommitEpochFloor) {
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;

  auto log = std::make_shared<op_log<2>>();
  query::query_service<2> primary(cfg);
  primary.attach_log(log);
  std::vector<point<2>> boot;
  for (int i = 0; i < 16; ++i) boot.push_back(pt(i / 16.0, i / 16.0));
  primary.bootstrap(boot);

  replica_set<2> reps(log, cfg, 2, /*start_tails=*/false);
  reps.pump();  // replicas caught up to the bootstrap epoch

  // max_epoch_lag = 0: replicas may only serve when fully caught up.
  replica_router<2> router(primary, reps, log, /*max_epoch_lag=*/0);

  // A write through the router lands on the primary and its completion
  // carries the commit epoch — the caller's read-your-writes floor.
  const auto wr =
      router.execute({query::request<2>::make_insert(pt(0.33, 0.33))});
  ASSERT_GT(wr.commit_epoch, 1u);
  EXPECT_EQ(wr.commit_epoch, log->head());
  EXPECT_EQ(router.stats().writes, 1u);

  const auto contains = [](const std::vector<std::vector<point<2>>>& rs,
                           const point<2>& p) {
    for (const auto& row : rs) {
      if (std::find(row.begin(), row.end(), p) != row.end()) return true;
    }
    return false;
  };

  // Replicas have not replayed that epoch: a read carrying the floor must
  // fall back to the primary (correct, counted) and still see the write.
  const auto before = router.execute(probe_batch(), wr.commit_epoch);
  EXPECT_TRUE(contains(rows(before.responses), pt(0.33, 0.33)));
  {
    const auto st = router.stats();
    EXPECT_EQ(st.reads_to_primary, 1u);
    EXPECT_EQ(st.fallbacks, 1u);
    EXPECT_EQ(st.reads_to_replicas, 0u);
  }

  // After the replicas catch up, the same floored read is served by a
  // replica — with the same bytes.
  reps.pump();
  const auto after = router.execute(probe_batch(), wr.commit_epoch);
  EXPECT_EQ(rows(after.responses), rows(before.responses));
  {
    const auto st = router.stats();
    EXPECT_EQ(st.reads_to_replicas, 1u);
    EXPECT_EQ(st.fallbacks, 1u) << "no new fallback once caught up";
  }
}

TEST(ReplicaRouter, StalenessBoundGatesEligibility) {
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;

  auto log = std::make_shared<op_log<2>>();
  query::query_service<2> primary(cfg);
  primary.attach_log(log);
  primary.bootstrap({pt(0.1, 0.1), pt(0.9, 0.9)});

  replica_set<2> reps(log, cfg, 1, /*start_tails=*/false);
  reps.pump();  // replica at epoch 1 (bootstrap)

  // Commit three more epochs the replica has not replayed.
  for (int i = 0; i < 3; ++i) {
    primary.execute({query::request<2>::make_insert(pt(0.2 + i * 0.1, 0.5))});
  }
  ASSERT_EQ(log->head(), 4u);
  ASSERT_EQ(reps.applied_epoch(0), 1u);

  // Lag bound 1 (< the replica's lag of 3): not eligible, fall back.
  replica_router<2> tight(primary, reps, log, /*max_epoch_lag=*/1);
  tight.execute(probe_batch());
  EXPECT_EQ(tight.stats().reads_to_primary, 1u);
  EXPECT_EQ(tight.stats().fallbacks, 1u);

  // Lag bound 3 (= the lag): the stale replica may serve the read.
  replica_router<2> loose(primary, reps, log, /*max_epoch_lag=*/3);
  loose.execute(probe_batch());
  EXPECT_EQ(loose.stats().reads_to_replicas, 1u);
  EXPECT_EQ(loose.stats().fallbacks, 0u);
}

// Live-tail smoke: tail threads stream the log concurrently with writes;
// replicas converge to the head and serve router reads, and teardown is
// clean (no gap, no replay errors).
TEST(ReplicaSet, LiveTailsConvergeUnderTraffic) {
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 4;
  cfg.policy = shard_policy::hash;
  cfg.drain = drain_mode::stealing;

  auto spec = query::make_churn_spec(300, 600, 0.25, 0.30);
  spec.seed = 31;
  const auto initial = query::make_initial<2>(spec);
  const auto reqs = query::make_requests<2>(spec, initial);

  auto log = std::make_shared<op_log<2>>();
  query::query_service<2> primary(cfg);
  primary.attach_log(log);
  primary.bootstrap(initial);

  replica_set<2> reps(log, cfg, 2, /*start_tails=*/true);
  replica_router<2> router(primary, reps, log, /*max_epoch_lag=*/2);

  // Pipelined writes through the router while the tails chase the log.
  const std::size_t batch = 64;
  std::vector<query::completion<2>> inflight;
  for (std::size_t off = 0; off < reqs.size(); off += batch) {
    const std::size_t end = std::min(reqs.size(), off + batch);
    inflight.push_back(router.submit(std::vector<query::request<2>>(
        reqs.begin() + off, reqs.begin() + end)));
  }
  std::uint64_t last_commit = 0;
  for (auto& c : inflight) {
    const auto r = c.get();
    if (r.commit_epoch > last_commit) last_commit = r.commit_epoch;
  }

  wait_until([&] { return reps.min_applied_epoch() >= log->head(); },
             "tails reach the log head");
  ASSERT_FALSE(reps.tail_failed()) << reps.tail_error();

  // A floored read now scatters to a replica and matches the primary.
  const auto got = router.execute(probe_batch(), last_commit);
  const auto want = rows(primary.execute(probe_batch()).responses);
  EXPECT_EQ(rows(got.responses), want);
  EXPECT_GE(router.stats().reads_to_replicas, 1u);

  for (std::size_t i = 0; i < reps.size(); ++i) {
    // min_applied_epoch advances at lane dispatch; gather() inspects the
    // backends directly, so wait out the in-flight replay tasks first.
    reps.replica(i).wait_lanes_idle();
    expect_same_resident_set(primary, reps.replica(i), "live-tail replica");
    EXPECT_EQ(reps.replica(i).stats().replay_errors, 0u);
  }
  reps.close();
}

// The replication metrics page: per-replica applied/lag gauges and the
// router counters, appendable to the primary's metrics_text().
TEST(ReplicaMetrics, ExpositionCoversReplicasAndRouter) {
  query::service_config cfg;
  cfg.shards = 2;
  auto log = std::make_shared<op_log<2>>();
  query::query_service<2> primary(cfg);
  primary.attach_log(log);
  primary.bootstrap({pt(0.1, 0.1), pt(0.9, 0.9)});

  replica_set<2> reps(log, cfg, 2, /*start_tails=*/false);
  reps.pump();
  replica_router<2> router(primary, reps, log, /*max_epoch_lag=*/1);
  router.execute({query::request<2>::make_insert(pt(0.5, 0.5))});
  router.execute(probe_batch());

  const auto st = router.stats();
  const std::string text =
      query::replication_metrics_text<2>(reps, *log, &st);
  EXPECT_NE(text.find("pargeo_replica_applied_epoch{replica=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pargeo_replica_applied_epoch{replica=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pargeo_replica_lag{replica=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pargeo_router_batches_total{dest=\"primary_write\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pargeo_router_fallbacks_total"), std::string::npos);
}

}  // namespace
