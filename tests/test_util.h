// Shared helpers for the test suite: brute-force reference implementations
// and dataset shorthands.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/point.h"

namespace pargeo::testutil {

/// Brute-force k nearest squared distances from q to pts (including q if
/// present), ascending.
template <int D>
std::vector<double> brute_knn_dists(const std::vector<point<D>>& pts,
                                    const point<D>& q, std::size_t k) {
  std::vector<double> d(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) d[i] = pts[i].dist_sq(q);
  std::sort(d.begin(), d.end());
  d.resize(std::min(k, d.size()));
  return d;
}

/// Brute-force points within radius of center (indices).
template <int D>
std::vector<std::size_t> brute_range_ball(const std::vector<point<D>>& pts,
                                          const point<D>& c, double r) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].dist_sq(c) <= r * r) out.push_back(i);
  }
  return out;
}

/// Brute-force closest-pair squared distance (n^2).
template <int D>
double brute_closest_pair(const std::vector<point<D>>& pts) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      best = std::min(best, pts[i].dist_sq(pts[j]));
    }
  }
  return best;
}

/// Prim's MST total weight (n^2) — reference for the EMST.
template <int D>
double prim_weight(const std::vector<point<D>>& pts) {
  const std::size_t n = pts.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<bool> in(n, false);
  dist[0] = 0;
  double total = 0;
  for (std::size_t it = 0; it < n; ++it) {
    std::size_t u = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in[i] && (u == n || dist[i] < dist[u])) u = i;
    }
    in[u] = true;
    total += std::sqrt(dist[u]);
    for (std::size_t v = 0; v < n; ++v) {
      if (!in[v]) dist[v] = std::min(dist[v], pts[u].dist_sq(pts[v]));
    }
  }
  return total;
}

}  // namespace pargeo::testutil
