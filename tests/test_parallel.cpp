// Tests for the OpenMP-backed parallel substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "parallel/parallel.h"

namespace par = pargeo::par;

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  par::parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ParallelForEmptyAndSingle) {
  int count = 0;
  par::parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  par::parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, ParDoRunsBoth) {
  int a = 0, b = 0;
  par::par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, NestedParDoInsideParallelFor) {
  std::vector<int> out(64, 0);
  par::parallel_for(
      0, 16,
      [&](std::size_t i) {
        par::par_do([&] { out[4 * i] = 1; out[4 * i + 1] = 1; },
                    [&] { out[4 * i + 2] = 1; out[4 * i + 3] = 1; });
      },
      1);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
}

TEST(Primitives, ReduceSum) {
  std::vector<int64_t> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(v.size());
  EXPECT_EQ(par::sum(v), n * (n - 1) / 2);
}

TEST(Primitives, ReduceEmpty) {
  std::vector<int> v;
  EXPECT_EQ(par::reduce(v, 0, std::plus<int>{}), 0);
}

TEST(Primitives, MinElementIndexFindsFirstMinimum) {
  std::vector<int> v{5, 3, 9, 3, 7};
  EXPECT_EQ(par::min_element_index(v, std::less<int>{}), 1u);
}

TEST(Primitives, ScanExclusiveMatchesSerial) {
  for (const std::size_t n : {1u, 7u, 4096u, 100001u}) {
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = (i * 7) % 13;
    std::vector<std::size_t> expect(n);
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = acc;
      acc += v[i];
    }
    const std::size_t total = par::scan_exclusive(v);
    EXPECT_EQ(total, acc);
    EXPECT_EQ(v, expect);
  }
}

TEST(Primitives, PackAndPackIndex) {
  std::vector<int> v(1000);
  std::vector<uint8_t> flags(1000);
  for (int i = 0; i < 1000; ++i) {
    v[i] = i;
    flags[i] = (i % 3 == 0) ? 1 : 0;
  }
  auto packed = par::pack(v, flags);
  auto idx = par::pack_index(flags);
  ASSERT_EQ(packed.size(), 334u);
  ASSERT_EQ(idx.size(), 334u);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    EXPECT_EQ(packed[i] % 3, 0);
    EXPECT_EQ(static_cast<std::size_t>(packed[i]), idx[i]);
  }
}

TEST(Primitives, FilterPreservesOrder) {
  std::vector<int> v(5000);
  for (int i = 0; i < 5000; ++i) v[i] = i;
  auto evens = par::filter(v, [](int x) { return x % 2 == 0; });
  ASSERT_EQ(evens.size(), 2500u);
  for (std::size_t i = 0; i < evens.size(); ++i) {
    EXPECT_EQ(evens[i], static_cast<int>(2 * i));
  }
}

TEST(Primitives, CountIf) {
  std::vector<int> v(99999);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  EXPECT_EQ(par::count_if(v, [](int x) { return x % 10 == 0; }), 10000u);
}

TEST(Primitives, FlattenConcatenatesInOrder) {
  std::vector<std::vector<int>> nested{{1, 2}, {}, {3}, {4, 5, 6}};
  auto flat = par::flatten(nested);
  EXPECT_EQ(flat, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Primitives, Tabulate) {
  auto sq = par::tabulate(100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sq[i], i * i);
}

TEST(Sort, SortsLargeArrays) {
  std::vector<uint64_t> v(200000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = par::hash64(i);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  par::sort(v);
  EXPECT_EQ(v, expect);
}

TEST(Sort, StableForEqualKeys) {
  struct kv {
    int key;
    int idx;
  };
  std::vector<kv> v(50000);
  for (int i = 0; i < 50000; ++i) v[i] = {i % 7, i};
  par::sort(v, [](const kv& a, const kv& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].idx, v[i].idx);
    }
  }
}

TEST(Sort, CustomComparatorDescending) {
  std::vector<int> v{3, 1, 4, 1, 5, 9, 2, 6};
  par::sort(v, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

TEST(Random, Hash64IsDeterministicAndSpread) {
  EXPECT_EQ(par::hash64(42), par::hash64(42));
  std::set<uint64_t> vals;
  for (uint64_t i = 0; i < 1000; ++i) vals.insert(par::hash64(i));
  EXPECT_EQ(vals.size(), 1000u);
}

TEST(Random, RandDoubleInUnitInterval) {
  for (uint64_t i = 0; i < 10000; ++i) {
    const double d = par::rand_double(3, i);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, PermutationIsBijective) {
  auto perm = par::random_permutation(12345, 7);
  std::vector<uint8_t> seen(perm.size(), 0);
  for (const std::size_t p : perm) {
    ASSERT_LT(p, perm.size());
    ASSERT_EQ(seen[p], 0);
    seen[p] = 1;
  }
}

TEST(Random, PermutationDependsOnSeed) {
  EXPECT_NE(par::random_permutation(1000, 1), par::random_permutation(1000, 2));
  EXPECT_EQ(par::random_permutation(1000, 5), par::random_permutation(1000, 5));
}

TEST(Random, ShufflePreservesMultiset) {
  std::vector<int> v(5000);
  for (int i = 0; i < 5000; ++i) v[i] = i % 100;
  auto s = par::random_shuffle(v, 11);
  auto a = v, b = s;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Atomics, WriteMinConverges) {
  std::atomic<uint32_t> x{1000};
  par::parallel_for(0, 10000, [&](std::size_t i) {
    par::write_min(&x, static_cast<uint32_t>(i % 500));
  });
  EXPECT_EQ(x.load(), 0u);
}

TEST(Atomics, WriteMinReturnsWhetherWritten) {
  std::atomic<int> x{10};
  EXPECT_TRUE(par::write_min(&x, 5));
  EXPECT_FALSE(par::write_min(&x, 7));
  EXPECT_EQ(x.load(), 5);
}

TEST(Atomics, WriteMaxConverges) {
  std::atomic<uint64_t> x{0};
  par::parallel_for(0, 10000, [&](std::size_t i) {
    par::write_max(&x, static_cast<uint64_t>(i));
  });
  EXPECT_EQ(x.load(), 9999u);
}

// Property sweep: pack/scan agree across sizes including block boundaries.
class ScanSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSweep, ScanTotalEqualsSum) {
  const std::size_t n = GetParam();
  std::vector<std::size_t> v(n, 1);
  auto copy = v;
  const std::size_t total = par::scan_exclusive(copy);
  EXPECT_EQ(total, n);
  if (n > 0) EXPECT_EQ(copy[n - 1], n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSweep,
                         ::testing::Values(0, 1, 2, 4095, 4096, 4097, 8192,
                                           100000));
