// Tests for the well-separated pair decomposition: exact pair coverage,
// separation of emitted pairs, linear pair count, and spanner stretch.
#include <gtest/gtest.h>

#include <map>
#include <queue>

#include "datagen/datagen.h"
#include "wspd/wspd.h"

using namespace pargeo;

namespace {

// Counts how often each unordered point pair is covered by the
// decomposition; self-pairs (a == b) cover internal pairs once.
template <int D>
std::map<std::pair<std::size_t, std::size_t>, int> coverage(
    const kdtree::tree<D>& t, const std::vector<wspd::node_pair<D>>& pairs) {
  std::map<std::pair<std::size_t, std::size_t>, int> cover;
  for (const auto& pr : pairs) {
    if (pr.a == pr.b) {
      for (std::size_t i = pr.a->lo; i < pr.a->hi; ++i) {
        for (std::size_t j = i + 1; j < pr.a->hi; ++j) {
          const std::size_t u = t.id_of(i), v = t.id_of(j);
          cover[{std::min(u, v), std::max(u, v)}]++;
        }
      }
    } else {
      for (std::size_t i = pr.a->lo; i < pr.a->hi; ++i) {
        for (std::size_t j = pr.b->lo; j < pr.b->hi; ++j) {
          const std::size_t u = t.id_of(i), v = t.id_of(j);
          cover[{std::min(u, v), std::max(u, v)}]++;
        }
      }
    }
  }
  return cover;
}

}  // namespace

TEST(Wspd, CoversEveryPairExactlyOnceDefaultLeaves) {
  auto pts = datagen::uniform<2>(400, 1);
  kdtree::tree<2> t(pts);
  auto pairs = wspd::decompose<2>(t, 2.0);
  auto cover = coverage<2>(t, pairs);
  const std::size_t n = pts.size();
  EXPECT_EQ(cover.size(), n * (n - 1) / 2);
  for (const auto& [key, c] : cover) {
    ASSERT_EQ(c, 1) << key.first << "," << key.second;
  }
}

TEST(Wspd, CoversEveryPairExactlyOnceSingletonLeaves) {
  auto pts = datagen::visualvar<2>(300, 2);
  kdtree::tree<2> t(pts, kdtree::split_policy::object_median, 1);
  auto pairs = wspd::decompose<2>(t, 2.0);
  auto cover = coverage<2>(t, pairs);
  const std::size_t n = pts.size();
  EXPECT_EQ(cover.size(), n * (n - 1) / 2);
  for (const auto& [key, c] : cover) ASSERT_EQ(c, 1);
}

TEST(Wspd, EmittedPairsAreSeparatedWithSingletonLeaves) {
  auto pts = datagen::uniform<2>(500, 3);
  kdtree::tree<2> t(pts, kdtree::split_policy::object_median, 1);
  const double s = 2.0;
  auto pairs = wspd::decompose<2>(t, s);
  for (const auto& pr : pairs) {
    ASSERT_NE(pr.a, pr.b);
    EXPECT_TRUE(wspd::well_separated<2>(pr.a, pr.b, s));
  }
}

TEST(Wspd, PairCountIsLinearish) {
  // WSPD size is O(s^d * n); check the constant stays sane for s=2, d=2.
  for (const std::size_t n : {1000u, 2000u, 4000u}) {
    auto pts = datagen::uniform<2>(n, 4);
    kdtree::tree<2> t(pts, kdtree::split_policy::object_median, 1);
    auto pairs = wspd::decompose<2>(t, 2.0);
    EXPECT_LT(pairs.size(), 60 * n);
    EXPECT_GT(pairs.size(), n / 2);
  }
}

TEST(Wspd, HigherSeparationGivesMorePairs) {
  auto pts = datagen::uniform<2>(2000, 5);
  kdtree::tree<2> t(pts, kdtree::split_policy::object_median, 1);
  const auto p2 = wspd::decompose<2>(t, 2.0).size();
  const auto p4 = wspd::decompose<2>(t, 4.0).size();
  EXPECT_GT(p4, p2);
}

TEST(Wspd, WorksIn3d5d) {
  auto pts3 = datagen::uniform<3>(300, 6);
  kdtree::tree<3> t3(pts3, kdtree::split_policy::object_median, 1);
  auto cover3 = coverage<3>(t3, wspd::decompose<3>(t3, 2.0));
  EXPECT_EQ(cover3.size(), pts3.size() * (pts3.size() - 1) / 2);

  auto pts5 = datagen::uniform<5>(150, 7);
  kdtree::tree<5> t5(pts5, kdtree::split_policy::object_median, 1);
  auto cover5 = coverage<5>(t5, wspd::decompose<5>(t5, 2.0));
  EXPECT_EQ(cover5.size(), pts5.size() * (pts5.size() - 1) / 2);
}

TEST(Wspd, SpannerStretchBound) {
  const double stretch = 2.0;
  auto pts = datagen::uniform<2>(250, 8);
  kdtree::tree<2> t(pts, kdtree::split_policy::object_median, 1);
  auto edges = wspd::spanner<2>(t, stretch);
  // Dijkstra from a few sources over the spanner; graph distance must be
  // within `stretch` of the Euclidean distance for every target.
  std::vector<std::vector<std::pair<std::size_t, double>>> adj(pts.size());
  for (const auto& [u, v] : edges) {
    const double w = pts[u].dist(pts[v]);
    adj[u].push_back({v, w});
    adj[v].push_back({u, w});
  }
  for (const std::size_t src : {0u, 57u, 123u}) {
    std::vector<double> dist(pts.size(),
                             std::numeric_limits<double>::infinity());
    using Q = std::pair<double, std::size_t>;
    std::priority_queue<Q, std::vector<Q>, std::greater<Q>> pq;
    dist[src] = 0;
    pq.push({0, src});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const auto& [v, w] : adj[u]) {
        if (d + w < dist[v]) {
          dist[v] = d + w;
          pq.push({dist[v], v});
        }
      }
    }
    for (std::size_t v = 0; v < pts.size(); ++v) {
      if (v == src) continue;
      const double direct = pts[src].dist(pts[v]);
      ASSERT_LE(dist[v], stretch * direct * (1 + 1e-9))
          << "stretch violated " << src << "->" << v;
    }
  }
}

TEST(Wspd, DuplicatePointsDontBreakDecomposition) {
  std::vector<point<2>> pts = datagen::uniform<2>(200, 9);
  pts.insert(pts.end(), pts.begin(), pts.begin() + 50);  // 50 duplicates
  kdtree::tree<2> t(pts);
  auto pairs = wspd::decompose<2>(t, 2.0);
  auto cover = coverage<2>(t, pairs);
  const std::size_t n = pts.size();
  EXPECT_EQ(cover.size(), n * (n - 1) / 2);
}
