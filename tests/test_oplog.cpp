// Op-log unit suite (query/oplog.h): dense epoch assignment and ring
// retention, tailer reads (replay-gap detection, wait_for_head), and the
// file round-trip — including the hostile-input edge cases the replica
// tier depends on rejecting cleanly: empty logs, TTL-expiry-only logs,
// truncated files, flipped bytes, bad magic/version/dim, and corrupt
// element counts (which must throw, not resize gigabytes — no UB under
// ASan).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "query/oplog.h"

using namespace pargeo;
using query::log_group;
using query::log_op;
using query::log_origin;
using query::log_record;
using query::op_log;

namespace {

point<2> pt(double x, double y) {
  point<2> p;
  p[0] = x;
  p[1] = y;
  return p;
}

log_record<2> rec(std::uint32_t shard, log_op kind,
                  std::vector<point<2>> pts) {
  log_record<2> r;
  r.shard = shard;
  r.kind = kind;
  r.pts = std::move(pts);
  return r;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> buf;
  unsigned char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return buf;
}

void spit(const std::string& path, const std::vector<unsigned char>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
  ASSERT_EQ(std::fclose(f), 0);
}

log_group<2> sample_group(log_origin origin, double base) {
  log_group<2> g;
  g.origin = origin;
  g.records.push_back(
      rec(0, log_op::insert, {pt(base, base + 1), pt(base + 2, base + 3)}));
  g.records.push_back(rec(1, log_op::erase, {pt(base, base + 1)}));
  return g;
}

void expect_groups_equal(const log_group<2>& a, const log_group<2>& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.has_bounds, b.has_bounds);
  EXPECT_EQ(a.split_dim, b.split_dim);
  EXPECT_EQ(a.cuts, b.cuts);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].shard, b.records[i].shard);
    EXPECT_EQ(a.records[i].kind, b.records[i].kind);
    EXPECT_EQ(a.records[i].pts, b.records[i].pts);
  }
}

TEST(OpLog, AppendAssignsDenseEpochs) {
  op_log<2> log;
  EXPECT_EQ(log.head(), 0u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.first_retained(), 1u);
  for (std::uint64_t e = 1; e <= 5; ++e) {
    EXPECT_EQ(log.append(sample_group(log_origin::client, double(e))), e);
  }
  EXPECT_EQ(log.head(), 5u);
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.first_retained(), 1u);
  const auto all = log.read_from(0);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].epoch, i + 1);
  }
}

TEST(OpLog, ReadFromRespectsAfterAndMax) {
  op_log<2> log;
  for (int i = 0; i < 10; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  const auto tail = log.read_from(7);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().epoch, 8u);
  const auto capped = log.read_from(2, 4);
  ASSERT_EQ(capped.size(), 4u);
  EXPECT_EQ(capped.front().epoch, 3u);
  EXPECT_EQ(capped.back().epoch, 6u);
  EXPECT_TRUE(log.read_from(10).empty());
}

TEST(OpLog, RingDropsOldestAndGapThrows) {
  op_log<2> log(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  EXPECT_EQ(log.head(), 10u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.first_retained(), 7u);
  // A tailer at epoch 6 can continue (needs 7, retained); one at 5 lost
  // epoch 6 forever and must hear about it.
  EXPECT_EQ(log.read_from(6).size(), 4u);
  EXPECT_THROW(log.read_from(5), std::runtime_error);
  EXPECT_THROW(log.read_from(0), std::runtime_error);
}

TEST(OpLog, WaitForHeadSeesAppends) {
  op_log<2> log;
  EXPECT_FALSE(log.wait_for_head(0, std::chrono::milliseconds(1)));
  log.append(sample_group(log_origin::client, 0));
  EXPECT_TRUE(log.wait_for_head(0, std::chrono::milliseconds(1)));
  EXPECT_FALSE(log.wait_for_head(1, std::chrono::milliseconds(1)));
}

TEST(OpLog, FileRoundTripAllOriginsAndBounds) {
  op_log<2> log;
  {
    log_group<2> g;  // bootstrap: build records + stripe bounds
    g.origin = log_origin::bootstrap;
    g.has_bounds = true;
    g.split_dim = 1;
    g.cuts = {0.25, 0.75};
    g.records.push_back(rec(0, log_op::build, {pt(0, 0), pt(0.1, 0.1)}));
    g.records.push_back(rec(1, log_op::build, {}));  // empty shard build
    g.records.push_back(rec(2, log_op::build, {pt(0.9, 0.9)}));
    log.append(std::move(g));
  }
  log.append(sample_group(log_origin::client, 1.0));
  log.append(sample_group(log_origin::expire, 2.0));
  {
    log_group<2> g;  // rebalance: new bounds + migration records
    g.origin = log_origin::rebalance;
    g.has_bounds = true;
    g.split_dim = 0;
    g.cuts = {0.4, 0.6};
    g.records.push_back(rec(2, log_op::erase, {pt(0.9, 0.9)}));
    g.records.push_back(rec(1, log_op::insert, {pt(0.9, 0.9)}));
    log.append(std::move(g));
  }

  const std::string path = temp_path("oplog_roundtrip.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  EXPECT_EQ(loaded->head(), log.head());
  EXPECT_EQ(loaded->size(), log.size());
  const auto want = log.read_from(0);
  const auto got = loaded->read_from(0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_groups_equal(got[i], want[i]);
  }
  std::remove(path.c_str());
}

TEST(OpLog, EmptyLogRoundTrips) {
  op_log<2> log;
  const std::string path = temp_path("oplog_empty.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  EXPECT_EQ(loaded->head(), 0u);
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_TRUE(loaded->read_from(0).empty());
  // A reloaded empty log keeps appending from epoch 1.
  EXPECT_EQ(loaded->append(sample_group(log_origin::client, 0)), 1u);
  std::remove(path.c_str());
}

TEST(OpLog, ExpiryOnlyLogRoundTrips) {
  // A service can commit nothing but TTL sweeps (pure-read traffic over
  // an expiring set); the log then holds only origin=expire erase groups.
  op_log<2> log;
  for (int i = 0; i < 3; ++i) {
    log_group<2> g;
    g.origin = log_origin::expire;
    g.records.push_back(
        rec(static_cast<std::uint32_t>(i % 2), log_op::erase,
            {pt(i, i), pt(i + 0.5, i + 0.5)}));
    log.append(std::move(g));
  }
  const std::string path = temp_path("oplog_expire_only.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  const auto got = loaded->read_from(0);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& g : got) {
    EXPECT_EQ(g.origin, log_origin::expire);
    for (const auto& r : g.records) EXPECT_EQ(r.kind, log_op::erase);
  }
  std::remove(path.c_str());
}

TEST(OpLog, TruncatedFileRejected) {
  op_log<2> log;
  log.append(sample_group(log_origin::client, 0));
  log.append(sample_group(log_origin::client, 1));
  const std::string path = temp_path("oplog_trunc.bin");
  log.write_log(path);
  const auto full = slurp(path);
  // Every proper prefix must be rejected cleanly — walk a spread of cut
  // points including mid-header, mid-payload, and mid-checksum.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{11}, full.size() / 2,
        full.size() - 9, full.size() - 1}) {
    std::vector<unsigned char> cut(full.begin(), full.begin() + keep);
    spit(path, cut);
    EXPECT_THROW(op_log<2>::read_log(path), std::runtime_error)
        << "prefix of " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(OpLog, CorruptByteRejectedByChecksum) {
  op_log<2> log;
  log.append(sample_group(log_origin::client, 0));
  const std::string path = temp_path("oplog_corrupt.bin");
  log.write_log(path);
  auto buf = slurp(path);
  // Flip one byte at several offsets; the trailing checksum catches all
  // of them before any structural parsing trusts the bytes.
  for (std::size_t at : {std::size_t{0}, std::size_t{5}, buf.size() / 2,
                         buf.size() - 1}) {
    auto bad = buf;
    bad[at] ^= 0x40;
    spit(path, bad);
    EXPECT_THROW(op_log<2>::read_log(path), std::runtime_error)
        << "flipped byte " << at;
  }
  std::remove(path.c_str());
}

TEST(OpLog, WrongDimensionRejected) {
  op_log<2> log;
  log.append(sample_group(log_origin::client, 0));
  const std::string path = temp_path("oplog_dim.bin");
  log.write_log(path);
  EXPECT_THROW(op_log<3>::read_log(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OpLog, MissingFileRejected) {
  EXPECT_THROW(op_log<2>::read_log(temp_path("oplog_nonexistent.bin")),
               std::runtime_error);
}

TEST(OpLog, ReloadedLogContinuesEpochs) {
  op_log<2> log;
  for (int i = 0; i < 4; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  const std::string path = temp_path("oplog_continue.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  EXPECT_EQ(loaded->append(sample_group(log_origin::client, 9)), 5u);
  EXPECT_EQ(loaded->head(), 5u);
  std::remove(path.c_str());
}

}  // namespace
