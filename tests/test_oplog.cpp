// Op-log unit suite (query/oplog.h): dense epoch assignment and ring
// retention, tailer reads (replay-gap detection, wait_for_head), and the
// v2 segmented file format — durable incremental append, checkpoint
// compaction, and the salvage semantics recovery depends on: a torn or
// frame-corrupt file yields its longest valid frame prefix (counting
// truncated_groups), while header damage (bad magic/version/dim or
// header checksum) still rejects the whole file. Corrupt element counts
// must throw, not resize gigabytes — no UB under ASan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "query/oplog.h"

using namespace pargeo;
using query::log_group;
using query::log_op;
using query::log_origin;
using query::log_record;
using query::op_log;

namespace {

point<2> pt(double x, double y) {
  point<2> p;
  p[0] = x;
  p[1] = y;
  return p;
}

log_record<2> rec(std::uint32_t shard, log_op kind,
                  std::vector<point<2>> pts) {
  log_record<2> r;
  r.shard = shard;
  r.kind = kind;
  r.pts = std::move(pts);
  return r;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> buf;
  unsigned char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return buf;
}

void spit(const std::string& path, const std::vector<unsigned char>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
  ASSERT_EQ(std::fclose(f), 0);
}

log_group<2> sample_group(log_origin origin, double base) {
  log_group<2> g;
  g.origin = origin;
  g.records.push_back(
      rec(0, log_op::insert, {pt(base, base + 1), pt(base + 2, base + 3)}));
  g.records.push_back(rec(1, log_op::erase, {pt(base, base + 1)}));
  return g;
}

void expect_groups_equal(const log_group<2>& a, const log_group<2>& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.has_bounds, b.has_bounds);
  EXPECT_EQ(a.split_dim, b.split_dim);
  EXPECT_EQ(a.cuts, b.cuts);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].shard, b.records[i].shard);
    EXPECT_EQ(a.records[i].kind, b.records[i].kind);
    EXPECT_EQ(a.records[i].pts, b.records[i].pts);
  }
}

TEST(OpLog, AppendAssignsDenseEpochs) {
  op_log<2> log;
  EXPECT_EQ(log.head(), 0u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.first_retained(), 1u);
  for (std::uint64_t e = 1; e <= 5; ++e) {
    EXPECT_EQ(log.append(sample_group(log_origin::client, double(e))), e);
  }
  EXPECT_EQ(log.head(), 5u);
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.first_retained(), 1u);
  const auto all = log.read_from(0);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].epoch, i + 1);
  }
}

TEST(OpLog, ReadFromRespectsAfterAndMax) {
  op_log<2> log;
  for (int i = 0; i < 10; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  const auto tail = log.read_from(7);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().epoch, 8u);
  const auto capped = log.read_from(2, 4);
  ASSERT_EQ(capped.size(), 4u);
  EXPECT_EQ(capped.front().epoch, 3u);
  EXPECT_EQ(capped.back().epoch, 6u);
  EXPECT_TRUE(log.read_from(10).empty());
}

TEST(OpLog, RingDropsOldestAndGapThrows) {
  op_log<2> log(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  EXPECT_EQ(log.head(), 10u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.first_retained(), 7u);
  // A tailer at epoch 6 can continue (needs 7, retained); one at 5 lost
  // epoch 6 forever and must hear about it.
  EXPECT_EQ(log.read_from(6).size(), 4u);
  EXPECT_THROW(log.read_from(5), std::runtime_error);
  EXPECT_THROW(log.read_from(0), std::runtime_error);
}

TEST(OpLog, WaitForHeadSeesAppends) {
  op_log<2> log;
  EXPECT_FALSE(log.wait_for_head(0, std::chrono::milliseconds(1)));
  log.append(sample_group(log_origin::client, 0));
  EXPECT_TRUE(log.wait_for_head(0, std::chrono::milliseconds(1)));
  EXPECT_FALSE(log.wait_for_head(1, std::chrono::milliseconds(1)));
}

TEST(OpLog, FileRoundTripAllOriginsAndBounds) {
  op_log<2> log;
  {
    log_group<2> g;  // bootstrap: build records + stripe bounds
    g.origin = log_origin::bootstrap;
    g.has_bounds = true;
    g.split_dim = 1;
    g.cuts = {0.25, 0.75};
    g.records.push_back(rec(0, log_op::build, {pt(0, 0), pt(0.1, 0.1)}));
    g.records.push_back(rec(1, log_op::build, {}));  // empty shard build
    g.records.push_back(rec(2, log_op::build, {pt(0.9, 0.9)}));
    log.append(std::move(g));
  }
  log.append(sample_group(log_origin::client, 1.0));
  log.append(sample_group(log_origin::expire, 2.0));
  {
    log_group<2> g;  // rebalance: new bounds + migration records
    g.origin = log_origin::rebalance;
    g.has_bounds = true;
    g.split_dim = 0;
    g.cuts = {0.4, 0.6};
    g.records.push_back(rec(2, log_op::erase, {pt(0.9, 0.9)}));
    g.records.push_back(rec(1, log_op::insert, {pt(0.9, 0.9)}));
    log.append(std::move(g));
  }

  const std::string path = temp_path("oplog_roundtrip.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  EXPECT_EQ(loaded->head(), log.head());
  EXPECT_EQ(loaded->size(), log.size());
  const auto want = log.read_from(0);
  const auto got = loaded->read_from(0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_groups_equal(got[i], want[i]);
  }
  std::remove(path.c_str());
}

TEST(OpLog, EmptyLogRoundTrips) {
  op_log<2> log;
  const std::string path = temp_path("oplog_empty.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  EXPECT_EQ(loaded->head(), 0u);
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_TRUE(loaded->read_from(0).empty());
  // A reloaded empty log keeps appending from epoch 1.
  EXPECT_EQ(loaded->append(sample_group(log_origin::client, 0)), 1u);
  std::remove(path.c_str());
}

TEST(OpLog, ExpiryOnlyLogRoundTrips) {
  // A service can commit nothing but TTL sweeps (pure-read traffic over
  // an expiring set); the log then holds only origin=expire erase groups.
  op_log<2> log;
  for (int i = 0; i < 3; ++i) {
    log_group<2> g;
    g.origin = log_origin::expire;
    g.records.push_back(
        rec(static_cast<std::uint32_t>(i % 2), log_op::erase,
            {pt(i, i), pt(i + 0.5, i + 0.5)}));
    log.append(std::move(g));
  }
  const std::string path = temp_path("oplog_expire_only.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  const auto got = loaded->read_from(0);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& g : got) {
    EXPECT_EQ(g.origin, log_origin::expire);
    for (const auto& r : g.records) EXPECT_EQ(r.kind, log_op::erase);
  }
  std::remove(path.c_str());
}

// magic + version + dim + start_after + header checksum (oplog.h v2).
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8;

TEST(OpLog, TornTailSalvagesValidPrefix) {
  op_log<2> log;
  log.append(sample_group(log_origin::client, 0));
  log.append(sample_group(log_origin::client, 1));
  const std::string path = temp_path("oplog_trunc.bin");
  log.write_log(path);
  const auto full = slurp(path);
  const auto want = log.read_from(0);

  // Cuts inside the header still reject the whole file.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{11}, kHeaderSize - 1}) {
    spit(path, {full.begin(), full.begin() + keep});
    EXPECT_THROW(op_log<2>::read_log(path), std::runtime_error)
        << "prefix of " << keep << " bytes";
  }

  // Both groups serialize identically, so the two frames split the
  // post-header bytes evenly — walk EVERY cut point past the header
  // (zero-length tail, mid-length-field, mid-payload, mid-checksum) and
  // check the salvage is exactly the complete-frame prefix.
  const std::size_t frame = (full.size() - kHeaderSize) / 2;
  ASSERT_EQ(kHeaderSize + 2 * frame, full.size());
  for (std::size_t keep = kHeaderSize; keep <= full.size(); ++keep) {
    spit(path, {full.begin(), full.begin() + keep});
    const std::size_t whole = (keep - kHeaderSize) / frame;
    const bool partial = (keep - kHeaderSize) % frame != 0;
    query::log_recovery_stats rs;
    std::shared_ptr<op_log<2>> loaded;
    ASSERT_NO_THROW(loaded = op_log<2>::read_log(path, 1 << 20, &rs))
        << "prefix of " << keep << " bytes";
    EXPECT_EQ(rs.groups, whole) << "prefix of " << keep << " bytes";
    EXPECT_EQ(rs.truncated_groups, partial ? 1u : 0u)
        << "prefix of " << keep << " bytes";
    EXPECT_EQ(loaded->head(), whole);
    const auto got = loaded->read_from(0);
    ASSERT_EQ(got.size(), whole);
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_groups_equal(got[i], want[i]);
    }
    // Appends continue from the salvaged head, not the torn tail.
    EXPECT_EQ(loaded->append(sample_group(log_origin::client, 7)), whole + 1);
  }
  std::remove(path.c_str());
}

TEST(OpLog, CorruptHeaderRejectsCorruptFrameSalvages) {
  op_log<2> log;
  log.append(sample_group(log_origin::client, 0));
  log.append(sample_group(log_origin::client, 1));
  const std::string path = temp_path("oplog_corrupt.bin");
  log.write_log(path);
  const auto buf = slurp(path);
  const std::size_t frame = (buf.size() - kHeaderSize) / 2;

  // A flipped header byte rejects the whole file (no epoch base to
  // trust frames against).
  for (std::size_t at :
       {std::size_t{0}, std::size_t{5}, std::size_t{14}, kHeaderSize - 1}) {
    auto bad = buf;
    bad[at] ^= 0x40;
    spit(path, bad);
    EXPECT_THROW(op_log<2>::read_log(path), std::runtime_error)
        << "flipped byte " << at;
  }

  // A flipped byte inside frame 2 drops only frame 2.
  {
    auto bad = buf;
    bad[kHeaderSize + frame + frame / 2] ^= 0x40;
    spit(path, bad);
    query::log_recovery_stats rs;
    const auto loaded = op_log<2>::read_log(path, 1 << 20, &rs);
    EXPECT_EQ(rs.groups, 1u);
    EXPECT_EQ(rs.truncated_groups, 1u);
    EXPECT_EQ(loaded->head(), 1u);
  }

  // A flipped byte inside frame 1's payload drops everything after it —
  // the structural walk still counts both dropped frames exactly,
  // because the framing (length fields) survived.
  {
    auto bad = buf;
    bad[kHeaderSize + frame / 2] ^= 0x40;
    spit(path, bad);
    query::log_recovery_stats rs;
    const auto loaded = op_log<2>::read_log(path, 1 << 20, &rs);
    EXPECT_EQ(rs.groups, 0u);
    EXPECT_EQ(rs.truncated_groups, 2u);
    EXPECT_EQ(loaded->head(), 0u);
    EXPECT_EQ(loaded->size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(OpLog, DurableAppendPersistsIncrementally) {
  const std::string path = temp_path("oplog_durable.bin");
  op_log<2> log;
  log.append(sample_group(log_origin::client, 0));  // pre-attach history
  log.open_durable(path, query::sync_policy::every_commit);
  for (int i = 1; i < 5; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  const auto ds = log.durable_stats();
  EXPECT_EQ(ds.frames, 4u);  // appended after attach
  EXPECT_GE(ds.syncs, 5u);   // rewrite + one per commit
  EXPECT_FALSE(ds.failed);
  // No close_durable(): the file must already be complete on disk.
  query::log_recovery_stats rs;
  const auto loaded = op_log<2>::read_log(path, 1 << 20, &rs);
  EXPECT_EQ(rs.groups, 5u);  // attach rewrote the pre-attach group too
  EXPECT_EQ(rs.truncated_groups, 0u);
  EXPECT_EQ(loaded->head(), 5u);
  const auto want = log.read_from(0);
  const auto got = loaded->read_from(0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_groups_equal(got[i], want[i]);
  }
  std::remove(path.c_str());
}

TEST(OpLog, CompactTruncatesRingAndFile) {
  const std::string path = temp_path("oplog_compact.bin");
  op_log<2> log;
  log.open_durable(path, query::sync_policy::none);
  for (int i = 0; i < 10; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  EXPECT_EQ(log.compact(6), 6u);
  EXPECT_EQ(log.first_retained(), 7u);
  EXPECT_EQ(log.head(), 10u);
  EXPECT_EQ(log.start_after(), 6u);
  // One more durable append after compaction, then reload.
  log.append(sample_group(log_origin::client, 10));
  const auto loaded = op_log<2>::read_log(path);
  EXPECT_EQ(loaded->head(), 11u);
  EXPECT_EQ(loaded->first_retained(), 7u);
  EXPECT_EQ(loaded->recovery_stats().start_after, 6u);
  EXPECT_EQ(loaded->read_from(6).size(), 5u);
  // A tailer below the compaction point now gaps — checkpoint resync
  // territory, not silent data loss.
  EXPECT_THROW(loaded->read_from(5), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OpLog, ResetBaseContinuesFromCheckpointEpoch) {
  op_log<2> log;
  log.reset_base(41);
  EXPECT_EQ(log.head(), 41u);
  EXPECT_EQ(log.append(sample_group(log_origin::client, 0)), 42u);
  EXPECT_THROW(log.reset_base(7), std::logic_error);  // non-empty now
}

TEST(OpLog, TornWriteFaultLatchesFailedState) {
  const std::string path = temp_path("oplog_torn_fault.bin");
  op_log<2> log;
  log.open_durable(path, query::sync_policy::every_commit);
  log.append(sample_group(log_origin::client, 0));
  log.append(sample_group(log_origin::client, 1));
  {
    query::fault::fault_spec spec;
    spec.action = query::fault::fault_action::torn_write;
    spec.nth = 1;
    spec.torn_keep_bytes = 10;
    query::fault::scoped_fault f(query::fault::kOplogFileWrite, spec);
    EXPECT_THROW(log.append(sample_group(log_origin::client, 2)),
                 std::runtime_error);
  }
  // The failed append never published: head unchanged, state latched,
  // later appends fail fast.
  EXPECT_EQ(log.head(), 2u);
  EXPECT_TRUE(log.durable_stats().failed);
  EXPECT_THROW(log.append(sample_group(log_origin::client, 3)),
               std::runtime_error);
  // On disk: the two whole frames salvage; the 10 torn bytes count as
  // one truncated group.
  query::log_recovery_stats rs;
  const auto loaded = op_log<2>::read_log(path, 1 << 20, &rs);
  EXPECT_EQ(rs.groups, 2u);
  EXPECT_EQ(rs.truncated_groups, 1u);
  EXPECT_EQ(loaded->head(), 2u);
  std::remove(path.c_str());
}

TEST(OpLog, WrongDimensionRejected) {
  op_log<2> log;
  log.append(sample_group(log_origin::client, 0));
  const std::string path = temp_path("oplog_dim.bin");
  log.write_log(path);
  EXPECT_THROW(op_log<3>::read_log(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OpLog, MissingFileRejected) {
  EXPECT_THROW(op_log<2>::read_log(temp_path("oplog_nonexistent.bin")),
               std::runtime_error);
}

TEST(OpLog, ReloadedLogContinuesEpochs) {
  op_log<2> log;
  for (int i = 0; i < 4; ++i) {
    log.append(sample_group(log_origin::client, i));
  }
  const std::string path = temp_path("oplog_continue.bin");
  log.write_log(path);
  const auto loaded = op_log<2>::read_log(path);
  EXPECT_EQ(loaded->append(sample_group(log_origin::client, 9)), 5u);
  EXPECT_EQ(loaded->head(), 5u);
  std::remove(path.c_str());
}

}  // namespace
