// Integration tests for the unified query subsystem driven through the
// query_service front door (1 shard — the per-shard executor path; sharded
// equivalence lives in test_query_service.cpp): mixed batched
// insert/erase/knn/range streams on every backend, checked request-by-
// request against a brute-force multiset oracle; plus phase-grouping,
// duplicate-point, empty-result, and kd-tree rebuild-policy checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "parallel/random.h"
#include "query/query_service.h"
#include "query/workload.h"
#include "test_util.h"

using namespace pargeo;
using query::backend;
using query::op;

namespace {

template <int D>
query::query_service<D> make_service(backend b, std::size_t shards = 1) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  return query::query_service<D>(cfg);
}

// Brute-force multiset reference applying requests one at a time. Erase
// removes one stored copy per request — identical to every backend as long
// as erased points are stored at most once (the streams below guarantee
// that; backends legitimately differ on erasing multiply-stored points).
template <int D>
struct oracle {
  std::vector<point<D>> pts;

  void apply_write(const query::request<D>& r) {
    if (r.kind == op::insert) {
      pts.push_back(r.p);
    } else if (r.kind == op::erase) {
      auto it = std::find(pts.begin(), pts.end(), r.p);
      if (it != pts.end()) pts.erase(it);
    }
  }

  // Checks one service response against the current state.
  void check_read(const query::request<D>& r,
                  const query::response<D>& resp) const {
    switch (r.kind) {
      case op::knn: {
        auto expect = testutil::brute_knn_dists(pts, r.p, r.k);
        ASSERT_EQ(resp.points.size(), expect.size());
        for (std::size_t j = 0; j < expect.size(); ++j) {
          EXPECT_EQ(resp.points[j].dist_sq(r.p), expect[j]) << "knn row " << j;
        }
        break;
      }
      case op::range_box: {
        std::vector<point<D>> expect;
        for (const auto& p : pts) {
          if (r.box.contains(p)) expect.push_back(p);
        }
        auto got = resp.points;
        std::sort(got.begin(), got.end());
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(got, expect);
        break;
      }
      case op::range_ball: {
        std::vector<point<D>> expect;
        for (const auto& p : pts) {
          if (p.dist_sq(r.p) <= r.radius * r.radius) expect.push_back(p);
        }
        auto got = resp.points;
        std::sort(got.begin(), got.end());
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(got, expect);
        break;
      }
      default:
        break;
    }
  }
};

// Deterministic mixed stream. Duplicates only ever enter via repeated
// inserts of "hot" points in a disjoint coordinate region that is never
// an erase target, so oracle erase semantics match every backend.
template <int D>
std::vector<query::request<D>> make_oracle_stream(std::size_t num_ops,
                                                  double side,
                                                  std::vector<point<D>> pool,
                                                  uint64_t seed) {
  point<D> hot;
  for (int d = 0; d < D; ++d) hot[d] = 10 * side + d;

  std::vector<query::request<D>> reqs;
  reqs.reserve(num_ops);
  for (std::size_t i = 0; i < num_ops; ++i) {
    const double u = par::rand_double(seed, i);
    auto fresh = [&] {
      point<D> p;
      for (int d = 0; d < D; ++d) {
        p[d] = side * par::rand_double(seed + 5 + d, i);
      }
      return p;
    };
    if (u < 0.15) {  // insert (1 in 5 a duplicate of the hot point)
      const auto p = par::rand_range(seed + 1, i, 5) == 0 ? hot : fresh();
      if (!(p == hot)) pool.push_back(p);
      reqs.push_back(query::request<D>::make_insert(p));
    } else if (u < 0.30 && !pool.empty()) {  // erase a (unique) pool point
      const std::size_t r = par::rand_range(seed + 2, i, pool.size());
      reqs.push_back(query::request<D>::make_erase(pool[r]));
    } else if (u < 0.60) {  // knn, k varying, sometimes k > n
      const std::size_t k = 1 + par::rand_range(seed + 3, i, 12);
      reqs.push_back(query::request<D>::make_knn(
          fresh(), par::rand_range(seed + 4, i, 20) == 0 ? 100000 : k));
    } else if (u < 0.80) {  // box range (1 in 4 far away -> empty result)
      auto corner = fresh();
      if (par::rand_range(seed + 8, i, 4) == 0) corner[0] += 100 * side;
      point<D> ext;
      for (int d = 0; d < D; ++d) {
        ext[d] = side * 0.1 * par::rand_double(seed + 9, i);
      }
      reqs.push_back(
          query::request<D>::make_range(aabb<D>(corner, corner + ext)));
    } else {  // ball range
      reqs.push_back(query::request<D>::make_ball(
          fresh(), side * 0.1 * par::rand_double(seed + 10, i)));
    }
  }
  return reqs;
}

template <int D>
void run_oracle_stream(backend b, std::size_t initial_n, std::size_t num_ops,
                       std::size_t service_batch, uint64_t seed) {
  const auto initial = datagen::uniform<D>(initial_n, seed);
  const double side = std::sqrt(static_cast<double>(std::max<std::size_t>(
      initial_n, 1)));
  const auto reqs =
      make_oracle_stream<D>(num_ops, side > 0 ? side : 1.0, initial, seed);

  auto service = make_service<D>(b);
  service.bootstrap(initial);
  oracle<D> ref;
  ref.pts = initial;

  for (std::size_t off = 0; off < reqs.size(); off += service_batch) {
    const std::size_t end = std::min(reqs.size(), off + service_batch);
    std::vector<query::request<D>> batch(reqs.begin() + off,
                                         reqs.begin() + end);
    auto result = service.execute(batch);
    ASSERT_EQ(result.responses.size(), batch.size());
    // Replay against the oracle in stream order: reads are checked against
    // the state at their position, writes advance the state.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (query::is_read(batch[i].kind)) {
        ref.check_read(batch[i], result.responses[i]);
      } else {
        ref.apply_write(batch[i]);
      }
    }
  }
  EXPECT_EQ(service.size(), ref.pts.size());
  auto stored = service.gather();
  auto expect = ref.pts;
  std::sort(stored.begin(), stored.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(stored, expect);
}

class QueryEngineOracle : public ::testing::TestWithParam<backend> {};

}  // namespace

TEST_P(QueryEngineOracle, MixedStreamMatchesOracle2D) {
  run_oracle_stream<2>(GetParam(), 400, 900, 64, 7);
}

TEST_P(QueryEngineOracle, MixedStreamMatchesOracle3D) {
  run_oracle_stream<3>(GetParam(), 300, 600, 48, 11);
}

TEST_P(QueryEngineOracle, StartsEmpty) {
  run_oracle_stream<2>(GetParam(), 0, 400, 32, 13);
}

TEST_P(QueryEngineOracle, EmptyIndexQueriesReturnNothing) {
  auto service = make_service<2>(GetParam());
  std::vector<query::request<2>> batch{
      query::request<2>::make_knn(point<2>{{1, 2}}, 5),
      query::request<2>::make_range(
          aabb<2>(point<2>{{-5, -5}}, point<2>{{5, 5}})),
      query::request<2>::make_ball(point<2>{{0, 0}}, 50.0),
      query::request<2>::make_erase(point<2>{{1, 2}}),
  };
  auto result = service.execute(batch);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(result.responses[i].points.empty());
  EXPECT_EQ(service.size(), 0u);
}

TEST_P(QueryEngineOracle, DuplicatePointsKnn) {
  auto service = make_service<2>(GetParam());
  const point<2> dup{{3, 4}};
  std::vector<query::request<2>> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(query::request<2>::make_insert(dup));
  }
  batch.push_back(query::request<2>::make_insert(point<2>{{50, 50}}));
  batch.push_back(query::request<2>::make_knn(dup, 5));
  batch.push_back(query::request<2>::make_ball(dup, 0.5));
  auto result = service.execute(batch);
  const auto& knn = result.responses[11].points;
  ASSERT_EQ(knn.size(), 5u);
  for (const auto& p : knn) EXPECT_EQ(p.dist_sq(dup), 0.0);
  EXPECT_EQ(result.responses[12].points.size(), 10u);
  EXPECT_EQ(service.size(), 11u);
}

TEST_P(QueryEngineOracle, KnnKZeroReturnsEmptyRows) {
  auto idx = query::make_index<2>(GetParam());
  idx->build(datagen::uniform<2>(100, 5));
  auto rows = idx->batch_knn(datagen::uniform<2>(10, 6), 0);
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& r : rows) EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, QueryEngineOracle,
    ::testing::Values(backend::kdtree, backend::zdtree, backend::bdltree),
    [](const ::testing::TestParamInfo<backend>& info) {
      return query::backend_name(info.param);
    });

TEST(QueryEngine, PhaseGroupingPreservesOrder) {
  auto service = make_service<2>(backend::bdltree);
  const point<2> a{{1, 1}}, b{{2, 2}};
  std::vector<query::request<2>> batch{
      query::request<2>::make_insert(a),
      query::request<2>::make_insert(b),
      query::request<2>::make_knn(a, 1),
      query::request<2>::make_erase(a),
      query::request<2>::make_knn(a, 1),
      query::request<2>::make_ball(b, 0.1),
  };
  auto result = service.execute(batch);
  // Phases: [insert x2][read x1][erase x1][read x2].
  ASSERT_EQ(result.stats.num_phases(), 4u);
  EXPECT_EQ(result.stats.num_writes, 3u);
  EXPECT_EQ(result.stats.num_reads, 3u);
  EXPECT_EQ(result.stats.phases[0].kind, op::insert);
  EXPECT_EQ(result.stats.phases[0].num_requests, 2u);
  EXPECT_EQ(result.stats.phases[2].kind, op::erase);
  // The knn before the erase sees `a`; the one after does not.
  ASSERT_EQ(result.responses[2].points.size(), 1u);
  EXPECT_EQ(result.responses[2].points[0], a);
  ASSERT_EQ(result.responses[4].points.size(), 1u);
  EXPECT_EQ(result.responses[4].points[0], b);
  // Responses carry their phase id in execution order.
  EXPECT_EQ(result.responses[0].phase, 0u);
  EXPECT_EQ(result.responses[2].phase, 1u);
  EXPECT_EQ(result.responses[3].phase, 2u);
  EXPECT_EQ(result.responses[5].phase, 3u);
}

TEST(QueryEngine, KnnShardsByK) {
  // One read phase mixing k values still answers each request with its k.
  auto service = make_service<2>(backend::kdtree);
  service.bootstrap(datagen::uniform<2>(200, 3));
  std::vector<query::request<2>> batch;
  const auto q = datagen::uniform<2>(1, 4)[0];
  for (std::size_t k : {1u, 7u, 3u, 7u, 1u, 0u}) {
    batch.push_back(query::request<2>::make_knn(q, k));
  }
  auto result = service.execute(batch);
  ASSERT_EQ(result.stats.num_phases(), 1u);
  const std::size_t want[] = {1, 7, 3, 7, 1, 0};
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.responses[i].points.size(), want[i]) << "request " << i;
  }
}

TEST(Workload, RunWorkloadAcrossBackendsAgrees) {
  // Same uniform spec on all three backends: identical streams must yield
  // identical k-NN distances and range hit counts response-by-response.
  query::workload_spec spec;
  spec.initial_points = 300;
  spec.num_ops = 800;
  spec.batch_size = 128;
  spec.k = 4;
  std::vector<std::vector<query::response<2>>> all;
  for (auto b : {backend::kdtree, backend::zdtree, backend::bdltree}) {
    auto service = make_service<2>(b);
    std::vector<query::response<2>> responses;
    const auto stats = query::run_workload<2>(service, spec, &responses);
    EXPECT_EQ(stats.num_requests, spec.num_ops);
    // Phase ids are rebased across batches: they index the accumulated
    // stats.phases and never decrease along the stream.
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_LT(responses[i].phase, stats.num_phases());
      if (i > 0) ASSERT_GE(responses[i].phase, responses[i - 1].phase);
    }
    all.push_back(std::move(responses));
  }
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    for (std::size_t b = 1; b < all.size(); ++b) {
      ASSERT_EQ(all[0][i].points.size(), all[b][i].points.size())
          << "response " << i << " backend " << b;
    }
  }
}

TEST(KdtreeRebuildPolicy, DefersRebuildsBelowThreshold) {
  query::kdtree_index<2> idx(kdtree::split_policy::object_median, 16,
                             /*rebuild_threshold=*/0.5);
  idx.build(datagen::uniform<2>(1000, 17));
  const std::size_t after_build = idx.rebuild_count();

  // 100 buffered writes against 1000 points stay under the 0.5 threshold.
  idx.batch_insert(datagen::uniform<2>(60, 18));
  auto victims = datagen::uniform<2>(1000, 17);
  victims.resize(40);
  idx.batch_erase(victims);
  EXPECT_EQ(idx.rebuild_count(), after_build);
  EXPECT_EQ(idx.pending_writes(), 100u);
  EXPECT_EQ(idx.size(), 1020u);

  // Crossing the threshold flattens the buffer into a fresh tree.
  idx.batch_insert(datagen::uniform<2>(600, 19));
  EXPECT_EQ(idx.rebuild_count(), after_build + 1);
  EXPECT_EQ(idx.pending_writes(), 0u);
  EXPECT_EQ(idx.size(), 1620u);
}

TEST(KdtreeRebuildPolicy, ZeroThresholdRebuildsEveryBatch) {
  query::kdtree_index<2> idx(kdtree::split_policy::object_median, 16,
                             /*rebuild_threshold=*/0.0);
  idx.build(datagen::uniform<2>(100, 23));
  const std::size_t after_build = idx.rebuild_count();
  idx.batch_insert(datagen::uniform<2>(1, 24));
  EXPECT_EQ(idx.rebuild_count(), after_build + 1);
  EXPECT_EQ(idx.pending_writes(), 0u);
  // An erase batch that matches nothing must not pay a rebuild.
  idx.batch_erase({point<2>{{-500, -500}}, point<2>{{-501, -501}}});
  EXPECT_EQ(idx.rebuild_count(), after_build + 1);
}

TEST(KdtreeRebuildPolicy, QueriesExactWhileWritesBuffered) {
  // With a huge threshold nothing ever rebuilds after build(); every query
  // must still merge the buffer exactly.
  query::kdtree_index<2> idx(kdtree::split_policy::object_median, 16,
                             /*rebuild_threshold=*/100.0);
  const auto initial = datagen::uniform<2>(300, 29);
  idx.build(initial);
  const std::size_t after_build = idx.rebuild_count();

  std::vector<point<2>> live = initial;
  const auto extra = datagen::uniform<2>(80, 31);
  for (std::size_t step = 0; step < 8; ++step) {
    // Alternate small inserts and erases (erases target distinct points).
    if (step % 2 == 0) {
      std::vector<point<2>> add(extra.begin() + step * 10,
                                extra.begin() + (step + 1) * 10);
      idx.batch_insert(add);
      live.insert(live.end(), add.begin(), add.end());
    } else {
      std::vector<point<2>> del(live.begin() + step, live.begin() + step + 7);
      idx.batch_erase(del);
      for (const auto& p : del) {
        auto it = std::find(live.begin(), live.end(), p);
        if (it != live.end()) live.erase(it);
      }
    }
    ASSERT_EQ(idx.size(), live.size());

    const auto queries = datagen::uniform<2>(10, 37 + step);
    auto rows = idx.batch_knn(queries, 5);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto expect = testutil::brute_knn_dists(live, queries[i], 5);
      ASSERT_EQ(rows[i].size(), expect.size());
      for (std::size_t j = 0; j < expect.size(); ++j) {
        EXPECT_EQ(rows[i][j].dist_sq(queries[i]), expect[j]);
      }
    }
    const point<2> c = queries[0];
    auto balls = idx.batch_ball({c}, {3.0});
    std::vector<point<2>> expect_ball;
    for (const auto& p : live) {
      if (p.dist_sq(c) <= 9.0) expect_ball.push_back(p);
    }
    std::sort(balls[0].begin(), balls[0].end());
    std::sort(expect_ball.begin(), expect_ball.end());
    EXPECT_EQ(balls[0], expect_ball);
  }
  EXPECT_EQ(idx.rebuild_count(), after_build);

  auto stored = idx.gather();
  std::sort(stored.begin(), stored.end());
  std::sort(live.begin(), live.end());
  EXPECT_EQ(stored, live);
}
