// Integration tests for the unified query subsystem: mixed batched
// insert/erase/knn/range streams on every backend, checked request-by-
// request against a brute-force multiset oracle; plus phase-grouping,
// duplicate-point, empty-result, and workload-determinism checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "parallel/random.h"
#include "query/query_engine.h"
#include "query/spatial_index.h"
#include "query/workload.h"
#include "test_util.h"

using namespace pargeo;
using query::backend;
using query::op;

namespace {

// Brute-force multiset reference applying requests one at a time. Erase
// removes one stored copy per request — identical to every backend as long
// as erased points are stored at most once (the streams below guarantee
// that; backends legitimately differ on erasing multiply-stored points).
template <int D>
struct oracle {
  std::vector<point<D>> pts;

  void apply_write(const query::request<D>& r) {
    if (r.kind == op::insert) {
      pts.push_back(r.p);
    } else if (r.kind == op::erase) {
      auto it = std::find(pts.begin(), pts.end(), r.p);
      if (it != pts.end()) pts.erase(it);
    }
  }

  // Checks one engine response against the current state.
  void check_read(const query::request<D>& r,
                  const query::response<D>& resp) const {
    switch (r.kind) {
      case op::knn: {
        auto expect = testutil::brute_knn_dists(pts, r.p, r.k);
        ASSERT_EQ(resp.points.size(), expect.size());
        for (std::size_t j = 0; j < expect.size(); ++j) {
          EXPECT_EQ(resp.points[j].dist_sq(r.p), expect[j]) << "knn row " << j;
        }
        break;
      }
      case op::range_box: {
        std::vector<point<D>> expect;
        for (const auto& p : pts) {
          if (r.box.contains(p)) expect.push_back(p);
        }
        auto got = resp.points;
        std::sort(got.begin(), got.end());
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(got, expect);
        break;
      }
      case op::range_ball: {
        std::vector<point<D>> expect;
        for (const auto& p : pts) {
          if (p.dist_sq(r.p) <= r.radius * r.radius) expect.push_back(p);
        }
        auto got = resp.points;
        std::sort(got.begin(), got.end());
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(got, expect);
        break;
      }
      default:
        break;
    }
  }
};

// Deterministic mixed stream. Duplicates only ever enter via repeated
// inserts of "hot" points in a disjoint coordinate region that is never
// an erase target, so oracle erase semantics match every backend.
template <int D>
std::vector<query::request<D>> make_oracle_stream(std::size_t num_ops,
                                                  double side,
                                                  std::vector<point<D>> pool,
                                                  uint64_t seed) {
  point<D> hot;
  for (int d = 0; d < D; ++d) hot[d] = 10 * side + d;

  std::vector<query::request<D>> reqs;
  reqs.reserve(num_ops);
  for (std::size_t i = 0; i < num_ops; ++i) {
    const double u = par::rand_double(seed, i);
    auto fresh = [&] {
      point<D> p;
      for (int d = 0; d < D; ++d) {
        p[d] = side * par::rand_double(seed + 5 + d, i);
      }
      return p;
    };
    if (u < 0.15) {  // insert (1 in 5 a duplicate of the hot point)
      const auto p = par::rand_range(seed + 1, i, 5) == 0 ? hot : fresh();
      if (!(p == hot)) pool.push_back(p);
      reqs.push_back(query::request<D>::make_insert(p));
    } else if (u < 0.30 && !pool.empty()) {  // erase a (unique) pool point
      const std::size_t r = par::rand_range(seed + 2, i, pool.size());
      reqs.push_back(query::request<D>::make_erase(pool[r]));
    } else if (u < 0.60) {  // knn, k varying, sometimes k > n
      const std::size_t k = 1 + par::rand_range(seed + 3, i, 12);
      reqs.push_back(query::request<D>::make_knn(
          fresh(), par::rand_range(seed + 4, i, 20) == 0 ? 100000 : k));
    } else if (u < 0.80) {  // box range (1 in 4 far away -> empty result)
      auto corner = fresh();
      if (par::rand_range(seed + 8, i, 4) == 0) corner[0] += 100 * side;
      point<D> ext;
      for (int d = 0; d < D; ++d) {
        ext[d] = side * 0.1 * par::rand_double(seed + 9, i);
      }
      reqs.push_back(
          query::request<D>::make_range(aabb<D>(corner, corner + ext)));
    } else {  // ball range
      reqs.push_back(query::request<D>::make_ball(
          fresh(), side * 0.1 * par::rand_double(seed + 10, i)));
    }
  }
  return reqs;
}

template <int D>
void run_oracle_stream(backend b, std::size_t initial_n, std::size_t num_ops,
                       std::size_t engine_batch, uint64_t seed) {
  const auto initial = datagen::uniform<D>(initial_n, seed);
  const double side = std::sqrt(static_cast<double>(std::max<std::size_t>(
      initial_n, 1)));
  const auto reqs =
      make_oracle_stream<D>(num_ops, side > 0 ? side : 1.0, initial, seed);

  query::query_engine<D> engine(query::make_index<D>(b));
  engine.bootstrap(initial);
  oracle<D> ref;
  ref.pts = initial;

  for (std::size_t off = 0; off < reqs.size(); off += engine_batch) {
    const std::size_t end = std::min(reqs.size(), off + engine_batch);
    std::vector<query::request<D>> batch(reqs.begin() + off,
                                         reqs.begin() + end);
    auto result = engine.execute(batch);
    ASSERT_EQ(result.responses.size(), batch.size());
    // Replay against the oracle in stream order: reads are checked against
    // the state at their position, writes advance the state.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (query::is_read(batch[i].kind)) {
        ref.check_read(batch[i], result.responses[i]);
      } else {
        ref.apply_write(batch[i]);
      }
    }
  }
  EXPECT_EQ(engine.index().size(), ref.pts.size());
  auto stored = engine.index().gather();
  auto expect = ref.pts;
  std::sort(stored.begin(), stored.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(stored, expect);
}

class QueryEngineOracle : public ::testing::TestWithParam<backend> {};

}  // namespace

TEST_P(QueryEngineOracle, MixedStreamMatchesOracle2D) {
  run_oracle_stream<2>(GetParam(), 400, 900, 64, 7);
}

TEST_P(QueryEngineOracle, MixedStreamMatchesOracle3D) {
  run_oracle_stream<3>(GetParam(), 300, 600, 48, 11);
}

TEST_P(QueryEngineOracle, StartsEmpty) {
  run_oracle_stream<2>(GetParam(), 0, 400, 32, 13);
}

TEST_P(QueryEngineOracle, EmptyIndexQueriesReturnNothing) {
  query::query_engine<2> engine(query::make_index<2>(GetParam()));
  std::vector<query::request<2>> batch{
      query::request<2>::make_knn(point<2>{{1, 2}}, 5),
      query::request<2>::make_range(
          aabb<2>(point<2>{{-5, -5}}, point<2>{{5, 5}})),
      query::request<2>::make_ball(point<2>{{0, 0}}, 50.0),
      query::request<2>::make_erase(point<2>{{1, 2}}),
  };
  auto result = engine.execute(batch);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(result.responses[i].points.empty());
  EXPECT_EQ(engine.index().size(), 0u);
}

TEST_P(QueryEngineOracle, DuplicatePointsKnn) {
  query::query_engine<2> engine(query::make_index<2>(GetParam()));
  const point<2> dup{{3, 4}};
  std::vector<query::request<2>> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(query::request<2>::make_insert(dup));
  }
  batch.push_back(query::request<2>::make_insert(point<2>{{50, 50}}));
  batch.push_back(query::request<2>::make_knn(dup, 5));
  batch.push_back(query::request<2>::make_ball(dup, 0.5));
  auto result = engine.execute(batch);
  const auto& knn = result.responses[11].points;
  ASSERT_EQ(knn.size(), 5u);
  for (const auto& p : knn) EXPECT_EQ(p.dist_sq(dup), 0.0);
  EXPECT_EQ(result.responses[12].points.size(), 10u);
  EXPECT_EQ(engine.index().size(), 11u);
}

TEST_P(QueryEngineOracle, KnnKZeroReturnsEmptyRows) {
  auto idx = query::make_index<2>(GetParam());
  idx->build(datagen::uniform<2>(100, 5));
  auto rows = idx->batch_knn(datagen::uniform<2>(10, 6), 0);
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& r : rows) EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, QueryEngineOracle,
    ::testing::Values(backend::kdtree, backend::zdtree, backend::bdltree),
    [](const ::testing::TestParamInfo<backend>& info) {
      return query::backend_name(info.param);
    });

TEST(QueryEngine, PhaseGroupingPreservesOrder) {
  query::query_engine<2> engine(query::make_index<2>(backend::bdltree));
  const point<2> a{{1, 1}}, b{{2, 2}};
  std::vector<query::request<2>> batch{
      query::request<2>::make_insert(a),
      query::request<2>::make_insert(b),
      query::request<2>::make_knn(a, 1),
      query::request<2>::make_erase(a),
      query::request<2>::make_knn(a, 1),
      query::request<2>::make_ball(b, 0.1),
  };
  auto result = engine.execute(batch);
  // Phases: [insert x2][read x1][erase x1][read x2].
  ASSERT_EQ(result.stats.num_phases(), 4u);
  EXPECT_EQ(result.stats.num_writes, 3u);
  EXPECT_EQ(result.stats.num_reads, 3u);
  EXPECT_EQ(result.stats.phases[0].kind, op::insert);
  EXPECT_EQ(result.stats.phases[0].num_requests, 2u);
  EXPECT_EQ(result.stats.phases[2].kind, op::erase);
  // The knn before the erase sees `a`; the one after does not.
  ASSERT_EQ(result.responses[2].points.size(), 1u);
  EXPECT_EQ(result.responses[2].points[0], a);
  ASSERT_EQ(result.responses[4].points.size(), 1u);
  EXPECT_EQ(result.responses[4].points[0], b);
  // Responses carry their phase id in execution order.
  EXPECT_EQ(result.responses[0].phase, 0u);
  EXPECT_EQ(result.responses[2].phase, 1u);
  EXPECT_EQ(result.responses[3].phase, 2u);
  EXPECT_EQ(result.responses[5].phase, 3u);
}

TEST(QueryEngine, KnnShardsByK) {
  // One read phase mixing k values still answers each request with its k.
  query::query_engine<2> engine(query::make_index<2>(backend::kdtree));
  engine.bootstrap(datagen::uniform<2>(200, 3));
  std::vector<query::request<2>> batch;
  const auto q = datagen::uniform<2>(1, 4)[0];
  for (std::size_t k : {1u, 7u, 3u, 7u, 1u, 0u}) {
    batch.push_back(query::request<2>::make_knn(q, k));
  }
  auto result = engine.execute(batch);
  ASSERT_EQ(result.stats.num_phases(), 1u);
  const std::size_t want[] = {1, 7, 3, 7, 1, 0};
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.responses[i].points.size(), want[i]) << "request " << i;
  }
}

TEST(Workload, DeterministicStreams) {
  query::workload_spec spec;
  spec.initial_points = 200;
  spec.num_ops = 500;
  spec.dist = query::distribution::zipf;
  const auto a = query::make_requests<2>(spec);
  const auto b = query::make_requests<2>(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].p, b[i].p);
  }
  spec.seed = 99;
  const auto c = query::make_requests<2>(spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].kind != c[i].kind || !(a[i].p == c[i].p);
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, ZipfReusesHotKeys) {
  query::workload_spec spec;
  spec.initial_points = 100;
  spec.num_ops = 2000;
  spec.dist = query::distribution::zipf;
  const auto reqs = query::make_requests<2>(spec);
  // Skewed key reuse must produce repeated payload points.
  std::map<point<2>, std::size_t> freq;
  for (const auto& r : reqs) ++freq[r.p];
  std::size_t max_freq = 0;
  for (const auto& [p, f] : freq) max_freq = std::max(max_freq, f);
  EXPECT_GT(max_freq, 5u);
  // Mix respects the spec's fractions roughly (knn dominates by default).
  std::size_t knn = 0;
  for (const auto& r : reqs) knn += r.kind == op::knn ? 1 : 0;
  EXPECT_GT(knn, reqs.size() / 3);
}

TEST(Workload, RunWorkloadAcrossBackendsAgrees) {
  // Same uniform spec on all three backends: identical streams must yield
  // identical k-NN distances and range hit counts response-by-response.
  query::workload_spec spec;
  spec.initial_points = 300;
  spec.num_ops = 800;
  spec.batch_size = 128;
  spec.k = 4;
  std::vector<std::vector<query::response<2>>> all;
  for (auto b : {backend::kdtree, backend::zdtree, backend::bdltree}) {
    query::query_engine<2> engine(query::make_index<2>(b));
    std::vector<query::response<2>> responses;
    const auto stats = query::run_workload<2>(engine, spec, &responses);
    EXPECT_EQ(stats.num_requests, spec.num_ops);
    // Phase ids are rebased across batches: they index the accumulated
    // stats.phases and never decrease along the stream.
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_LT(responses[i].phase, stats.num_phases());
      if (i > 0) ASSERT_GE(responses[i].phase, responses[i - 1].phase);
    }
    all.push_back(std::move(responses));
  }
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    for (std::size_t b = 1; b < all.size(); ++b) {
      ASSERT_EQ(all[0][i].points.size(), all[b][i].points.size())
          << "response " << i << " backend " << b;
    }
  }
}
