// Tests for the vEB-layout static kd-tree (the BDL building block):
// construction, the vEB child index arithmetic (validated structurally),
// batch deletion with live counts, and k-NN vs brute force.
#include <gtest/gtest.h>

#include <algorithm>

#include "bdltree/veb_tree.h"
#include "datagen/datagen.h"
#include "test_util.h"

using namespace pargeo;
using bdltree::split_policy;
using bdltree::veb_tree;

namespace {

template <int D>
std::vector<point<D>> knn_points(const veb_tree<D>& t, const point<D>& q,
                                 std::size_t k) {
  kdtree::knn_buffer buf(k);
  t.knn(q, buf);
  std::vector<point<D>> out;
  for (const auto& e : buf.finish()) {
    out.push_back(veb_tree<D>::decode_id(e.id));
  }
  return out;
}

}  // namespace

TEST(VebTree, BuildAndGatherRoundTrip) {
  auto pts = datagen::uniform<2>(10000, 3);
  veb_tree<2> t(pts, split_policy::object_median);
  EXPECT_EQ(t.size(), pts.size());
  auto back = t.gather();
  std::sort(back.begin(), back.end());
  auto expect = pts;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(back, expect);
}

TEST(VebTree, NodeArraySizeIsPowerOfTwoMinusOne) {
  auto pts = datagen::uniform<2>(1000, 4);
  veb_tree<2> t(pts, split_policy::object_median);
  const std::size_t n = t.num_nodes();
  EXPECT_EQ((n + 1) & n, 0u);  // 2^l - 1
}

TEST(VebTree, KnnMatchesBruteBothPolicies) {
  for (const auto pol :
       {split_policy::object_median, split_policy::spatial_median}) {
    auto pts = datagen::visualvar<5>(5000, 5);
    veb_tree<5> t(pts, pol);
    for (int q = 0; q < 25; ++q) {
      const auto& qp = pts[(q * 211) % pts.size()];
      auto got = knn_points(t, qp, 6);
      auto brute = testutil::brute_knn_dists(pts, qp, 6);
      ASSERT_EQ(got.size(), brute.size());
      for (std::size_t k = 0; k < brute.size(); ++k) {
        EXPECT_EQ(got[k].dist_sq(qp), brute[k]);
      }
    }
  }
}

TEST(VebTree, EraseRemovesAndKnnSkips) {
  auto pts = datagen::uniform<2>(5000, 6);
  veb_tree<2> t(pts, split_policy::object_median);
  std::vector<point<2>> del(pts.begin(), pts.begin() + 2000);
  const std::size_t removed = t.erase(del);
  EXPECT_EQ(removed, 2000u);
  EXPECT_EQ(t.size(), 3000u);
  std::vector<point<2>> rest(pts.begin() + 2000, pts.end());
  for (int q = 0; q < 20; ++q) {
    const auto& qp = rest[(q * 97) % rest.size()];
    auto got = knn_points(t, qp, 4);
    auto brute = testutil::brute_knn_dists(rest, qp, 4);
    for (std::size_t k = 0; k < brute.size(); ++k) {
      EXPECT_EQ(got[k].dist_sq(qp), brute[k]);
    }
  }
}

TEST(VebTree, EraseNonMembersIsNoop) {
  auto pts = datagen::uniform<2>(1000, 7);
  veb_tree<2> t(pts, split_policy::object_median);
  std::vector<point<2>> bogus{point<2>{{-1e9, -1e9}},
                              point<2>{{1e9, 1e9}}};
  EXPECT_EQ(t.erase(bogus), 0u);
  EXPECT_EQ(t.size(), pts.size());
}

TEST(VebTree, EraseEverything) {
  auto pts = datagen::uniform<2>(500, 8);
  veb_tree<2> t(pts, split_policy::object_median);
  EXPECT_EQ(t.erase(pts), pts.size());
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.gather().empty());
  kdtree::knn_buffer buf(3);
  t.knn(pts[0], buf);  // must not crash on an empty tree
  EXPECT_TRUE(buf.finish().empty());
}

TEST(VebTree, EraseBatchLargerThanTree) {
  auto pts = datagen::uniform<2>(100, 9);
  veb_tree<2> t(pts, split_policy::object_median);
  auto batch = pts;
  batch.insert(batch.end(), pts.begin(), pts.end());  // every point twice
  EXPECT_EQ(t.erase(batch), pts.size());
  EXPECT_TRUE(t.empty());
}

TEST(VebTree, TinyTrees) {
  for (std::size_t n : {1u, 2u, 3u, 16u, 17u, 31u, 33u}) {
    auto pts = datagen::uniform<2>(n, 10 + n);
    veb_tree<2> t(pts, split_policy::object_median);
    EXPECT_EQ(t.size(), n);
    auto got = knn_points(t, pts[0], n);
    EXPECT_EQ(got.size(), n);
  }
}

TEST(VebTree, SpatialMedianHandlesSkewedData) {
  // Heavily clustered data triggers the spatial-median degenerate-cut
  // fallback; the tree must stay consistent.
  std::vector<point<2>> pts(3000, point<2>{{1, 1}});
  for (int i = 0; i < 1000; ++i) {
    pts.push_back(point<2>{{1000.0 + i * 0.001, 5.0}});
  }
  veb_tree<2> t(pts, split_policy::spatial_median);
  EXPECT_EQ(t.size(), pts.size());
  auto got = knn_points(t, point<2>{{1, 1}}, 3);
  for (const auto& p : got) EXPECT_EQ(p.dist_sq(point<2>{{1, 1}}), 0.0);
}
