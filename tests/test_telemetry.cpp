// Unit + concurrency tests for the request-lifecycle telemetry
// (src/query/telemetry.h) and its threading through the query service:
//
//  - latency_histogram units: empty/single-sample percentiles, bucket
//    boundary <-> index consistency, percentile ordering, exact and
//    associative merges, atomic-recorder snapshots.
//  - Stage-monotonicity oracle on sampled trace spans (trace_sample=1):
//    for every ticket, the queue_wait span starts at submit and the
//    completion span (submit -> fulfil) covers it.
//  - Concurrent recorders under TSan: 4 producer threads against
//    stealing lanes; no sample loss (stage counts equal the ticket
//    count) and the folded legacy `execute_seconds` counters agree with
//    the execute_write histograms to the nanosecond.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "query/query_service.h"
#include "query/telemetry.h"
#include "query/workload.h"

using namespace pargeo;
using query::latency_histogram;
using query::stage;

namespace {

// ---- histogram units -------------------------------------------------------

TEST(LatencyHistogram, EmptySummariesToZero) {
  latency_histogram h;
  const auto s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p999, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.sum_seconds, 0.0);
}

TEST(LatencyHistogram, SingleSampleIsItsOwnPercentiles) {
  for (const std::uint64_t ns :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{99},
        std::uint64_t{100}, std::uint64_t{141}, std::uint64_t{1000000},
        std::uint64_t{123456789}}) {
    latency_histogram h;
    h.record(ns);
    const auto s = h.summary();
    EXPECT_EQ(s.count, 1u);
    // The max tracker clamps the bucket upper bound, so a lone sample
    // reports exactly as itself at every percentile.
    EXPECT_EQ(s.p50, ns) << ns;
    EXPECT_EQ(s.p95, ns) << ns;
    EXPECT_EQ(s.p999, ns) << ns;
    EXPECT_EQ(s.max, ns) << ns;
  }
}

TEST(LatencyHistogram, BucketBoundariesRoundTrip) {
  for (int b = 0; b < latency_histogram::kBuckets; ++b) {
    const std::uint64_t lo = latency_histogram::bucket_lower(b);
    EXPECT_EQ(latency_histogram::bucket_index(lo), b) << "lower of " << b;
    if (b + 1 < latency_histogram::kBuckets) {
      const std::uint64_t hi = latency_histogram::bucket_upper(b);
      EXPECT_EQ(latency_histogram::bucket_index(hi - 1), b)
          << "upper-1 of " << b;
      EXPECT_EQ(latency_histogram::bucket_index(hi), b + 1)
          << "upper of " << b;
      EXPECT_LT(lo, hi) << b;
    }
  }
}

TEST(LatencyHistogram, PercentilesAreOrdered) {
  std::mt19937_64 rng(7);
  latency_histogram h;
  std::lognormal_distribution<double> d(10.0, 2.0);  // heavy tail, ~us-ms
  for (int i = 0; i < 20000; ++i) {
    h.record(static_cast<std::uint64_t>(d(rng)));
  }
  const auto s = h.summary();
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
  EXPECT_GT(s.p50, 0u);
}

TEST(LatencyHistogram, MergeIsExactAndAssociative) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::uint64_t> d(0, std::uint64_t{1} << 34);
  latency_histogram a, b, c, all;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = d(rng);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    all.record(v);
  }
  // (a + b) + c
  latency_histogram ab = a;
  ab.merge(b);
  latency_histogram ab_c = ab;
  ab_c.merge(c);
  // a + (b + c)
  latency_histogram bc = b;
  bc.merge(c);
  latency_histogram a_bc = a;
  a_bc.merge(bc);
  const auto l = ab_c.summary(), r = a_bc.summary(), w = all.summary();
  EXPECT_EQ(l.count, r.count);
  EXPECT_EQ(l.count, w.count);
  EXPECT_EQ(l.p50, r.p50);
  EXPECT_EQ(l.p999, r.p999);
  EXPECT_EQ(l.max, r.max);
  // Merging partitions reproduces the single-histogram summary exactly:
  // merge is bucket-wise addition, no resampling.
  EXPECT_EQ(l.p50, w.p50);
  EXPECT_EQ(l.p95, w.p95);
  EXPECT_EQ(l.p99, w.p99);
  EXPECT_EQ(l.p999, w.p999);
  EXPECT_EQ(l.max, w.max);
  EXPECT_DOUBLE_EQ(l.sum_seconds, w.sum_seconds);
}

TEST(LatencyHistogram, AtomicSnapshotMatchesPlainRecording) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<std::uint64_t> d(0, 10'000'000);
  query::atomic_latency_histogram atomic;
  latency_histogram plain;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = d(rng);
    atomic.record(v);
    plain.record(v);
  }
  const latency_histogram snap = atomic.snapshot();
  const auto a = snap.summary(), p = plain.summary();
  EXPECT_EQ(a.count, p.count);
  EXPECT_EQ(a.p50, p.p50);
  EXPECT_EQ(a.p999, p.p999);
  EXPECT_EQ(a.max, p.max);
}

// ---- service-level telemetry ----------------------------------------------

constexpr int kDim = 2;

query::workload_spec telemetry_spec(std::size_t initial_n,
                                    std::size_t num_ops, std::uint64_t seed) {
  auto spec = query::make_read_write_spec(initial_n, num_ops, 0.8);
  spec.batch_size = 64;
  spec.seed = seed;
  return spec;
}

// Submits `spec`'s stream asynchronously in read/write runs and redeems at
// the end; returns the number of tickets cut.
std::size_t submit_stream(query::query_service<kDim>& service,
                          const query::workload_spec& spec) {
  const auto reqs =
      query::make_requests<kDim>(spec, query::make_initial<kDim>(spec));
  std::vector<query::completion<kDim>> pending;
  std::size_t off = 0;
  while (off < reqs.size()) {
    const bool read_run = query::is_read(reqs[off].kind);
    std::size_t end = off + 1;
    while (end < reqs.size() && end - off < 64 &&
           query::is_read(reqs[end].kind) == read_run) {
      ++end;
    }
    pending.push_back(service.submit({reqs.begin() + off, reqs.begin() + end}));
    off = end;
  }
  for (auto& c : pending) c.get();
  return pending.size();
}

TEST(TelemetryService, SpanMonotonicityOracle) {
  query::service_config cfg;
  cfg.backend = query::backend::kdtree;
  cfg.shards = 2;
  cfg.telemetry = query::telemetry_level::trace;
  cfg.trace_sample = 1;  // every ticket sampled
  cfg.trace_capacity = 1 << 16;
  cfg.max_retained = std::size_t{1} << 20;
  query::query_service<kDim> service(cfg);
  const auto spec = telemetry_spec(400, 1500, 21);
  service.bootstrap(query::make_initial<kDim>(spec));
  const std::size_t tickets = submit_stream(service, spec);
  service.close();

  const auto spans = service.trace_events();
  ASSERT_FALSE(spans.empty());
  // Group the per-ticket lifecycle spans. queue_wait starts at submit;
  // completion also starts at submit and spans submit -> fulfil — so per
  // ticket the two share a start and completion covers queue_wait.
  std::map<std::uint64_t, std::uint64_t> queue_start, queue_dur, comp_start,
      comp_dur;
  const std::uint64_t horizon = query::monotonic_ns();
  for (const auto& sp : spans) {
    EXPECT_NE(sp.ticket, 0u);
    EXPECT_LE(sp.ts_ns + sp.dur_ns, horizon);
    const std::string name = sp.name;
    if (name == "queue_wait") {
      queue_start[sp.ticket] = sp.ts_ns;
      queue_dur[sp.ticket] = sp.dur_ns;
    } else if (name == "completion") {
      comp_start[sp.ticket] = sp.ts_ns;
      comp_dur[sp.ticket] = sp.dur_ns;
    }
  }
  EXPECT_EQ(comp_dur.size(), tickets);
  ASSERT_FALSE(queue_dur.empty());
  for (const auto& [ticket, dur] : queue_dur) {
    ASSERT_TRUE(comp_dur.count(ticket)) << "ticket " << ticket;
    EXPECT_EQ(queue_start[ticket], comp_start[ticket]) << ticket;
    // fulfil happens after dequeue: completion covers the queue wait.
    EXPECT_GE(comp_dur[ticket], dur) << ticket;
  }

  // And the report agrees: every ticket recorded queue_wait + completion.
  const auto rep = service.telemetry_snapshot();
  EXPECT_EQ(rep.stage_hist(stage::completion).summary().count, tickets);
  EXPECT_EQ(rep.stage_hist(stage::queue_wait).summary().count, tickets);
}

TEST(TelemetryService, ConcurrentRecordersLoseNothing) {
  constexpr int kProducers = 4;
  query::service_config cfg;
  cfg.backend = query::backend::kdtree;
  cfg.shards = 4;
  cfg.drain = query::drain_mode::stealing;
  cfg.telemetry = query::telemetry_level::stats;
  cfg.max_retained = std::size_t{1} << 20;
  query::query_service<kDim> service(cfg);
  const auto base = telemetry_spec(400, 800, 31);
  service.bootstrap(query::make_initial<kDim>(base));

  std::vector<std::size_t> tickets(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      auto spec = base;
      spec.seed = base.seed + 100 + t;
      tickets[t] = submit_stream(service, spec);
    });
  }
  for (auto& p : producers) p.join();
  service.close();

  std::size_t total = 0;
  for (const auto n : tickets) total += n;
  ASSERT_GT(total, 0u);

  const auto svc = service.stats();
  const auto& rep = svc.telemetry;
  // No sample loss across 4 producers x stealing lanes: every ticket
  // passes queue_wait once and completes once.
  EXPECT_EQ(rep.stage_hist(stage::queue_wait).summary().count, total);
  EXPECT_EQ(rep.stage_hist(stage::completion).summary().count, total);

  // The fold satellite's invariant: legacy per-lane execute_seconds and
  // the execute_write histograms are fed from the same nanosecond deltas
  // (keyed by the task's shard in both, even when stolen), so their
  // totals agree.
  double lane_secs = 0;
  for (const auto& lane : svc.per_shard) lane_secs += lane.execute_seconds;
  double hist_secs = 0;
  ASSERT_EQ(rep.shards.size(), cfg.shards);
  for (const auto& stages : rep.shards) {
    hist_secs +=
        stages[query::stage_index(stage::execute_write)].summary().sum_seconds;
  }
  EXPECT_NEAR(lane_secs, hist_secs, 1e-6 + 1e-9 * lane_secs);

  // Prometheus exposition covers the stage histograms.
  const std::string text = query::metrics_text(svc);
  EXPECT_NE(text.find("pargeo_stage_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("stage=\"completion\""), std::string::npos);
  EXPECT_NE(text.find("pargeo_tickets_total"), std::string::npos);
}

// Telemetry off must keep all telemetry surfaces empty (and cheap).
TEST(TelemetryService, OffRecordsNothing) {
  query::service_config cfg;
  cfg.backend = query::backend::kdtree;
  cfg.shards = 2;
  cfg.telemetry = query::telemetry_level::off;
  cfg.max_retained = std::size_t{1} << 20;
  query::query_service<kDim> service(cfg);
  const auto spec = telemetry_spec(200, 400, 41);
  service.bootstrap(query::make_initial<kDim>(spec));
  submit_stream(service, spec);
  service.close();
  const auto rep = service.telemetry_snapshot();
  EXPECT_EQ(rep.stage_hist(stage::completion).summary().count, 0u);
  EXPECT_TRUE(service.trace_events().empty());
  EXPECT_FALSE(service.dump_trace("/dev/null"));
}

}  // namespace
