// Adversarial-skew oracle for the drain pipeline: a stream whose writes
// all land in one spatial stripe collapses per-shard routing onto one
// lane — exactly the scenario work-stealing lanes (drain_mode::stealing)
// and online stripe rebalancing (rebalance_threshold) exist for. The
// oracle runs that stream through single / per_shard / stealing, with and
// without rebalancing, on every backend, and demands the responses match
// the unsharded reference (and the drain-mode variants match each other
// row for row). Mechanism tests then prove the counters move: stealing
// actually steals from the hot lane, and rebalancing actually re-stripes,
// migrates points, and flattens the shard sizes. TSan-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "query/query_service.h"
#include "query/workload.h"
#include "test_query_util.h"

using namespace pargeo;
using query::backend;
using query::drain_mode;
using query::op;
using query::shard_policy;

namespace {

// Spins until `done()` holds, failing after a generous timeout instead of
// hanging the suite.
template <class Pred>
void wait_until(const Pred& done, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// The adversarial stream: uniform bootstrap carves balanced stripes, then
// every payload point concentrates in one corner cube (dist=skewed), so
// under spatial routing nearly all writes hit one shard. Insert-heavy so
// the skew actually accumulates mass.
query::workload_spec make_skew_spec() {
  query::workload_spec spec;
  spec.initial_points = 400;
  spec.num_ops = 1200;
  spec.batch_size = 64;
  spec.k = 6;
  spec.dist = query::distribution::skewed;
  spec.skew_frac = 0.08;
  spec.insert_frac = 0.35;
  spec.erase_frac = 0.05;
  spec.knn_frac = 0.35;
  spec.range_frac = 0.125;
  spec.ball_frac = 0.125;
  return spec;
}

using testutil::expect_same_responses;

struct skew_run {
  std::vector<query::response<2>> responses;
  std::vector<point<2>> contents;  // sorted gather()
  query::service_stats stats;
};

skew_run run_skewed(backend b, std::size_t shards, drain_mode mode,
                    double rebalance_threshold,
                    const query::workload_spec& spec) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = shard_policy::spatial;
  cfg.drain = mode;
  cfg.rebalance_threshold = rebalance_threshold;
  query::query_service<2> service(cfg);
  skew_run run;
  query::run_workload<2>(service, spec, &run.responses);
  service.close();
  run.contents = service.gather();
  std::sort(run.contents.begin(), run.contents.end());
  run.stats = service.stats();
  return run;
}

class SkewOracle : public ::testing::TestWithParam<backend> {};

}  // namespace

TEST_P(SkewOracle, AllModesMatchUnshardedReference) {
  const backend b = GetParam();
  const auto spec = make_skew_spec();
  const auto reqs = query::make_requests<2>(spec);

  const auto reference =
      run_skewed(b, 1, drain_mode::single, /*rebalance=*/0, spec);

  for (auto mode :
       {drain_mode::single, drain_mode::per_shard, drain_mode::stealing}) {
    for (const double rebal : {0.0, 1.2}) {
      const auto got = run_skewed(b, 4, mode, rebal, spec);
      SCOPED_TRACE(std::string(query::drain_mode_name(mode)) +
                   " rebalance=" + std::to_string(rebal));
      expect_same_responses(reqs, got.responses, reference.responses);
      // The stored multiset survives migration byte for byte.
      EXPECT_EQ(got.contents, reference.contents);
      if (rebal > 0) {
        // Skewed inserts push the hot shard past 1.2x the mean early on:
        // the rebalancer must have engaged (and stats must say so).
        EXPECT_GE(got.stats.rebalances, 1u);
        EXPECT_GT(got.stats.rebalance_moved, 0u);
      } else {
        EXPECT_EQ(got.stats.rebalances, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SkewOracle,
    ::testing::Values(backend::kdtree, backend::zdtree, backend::bdltree),
    [](const ::testing::TestParamInfo<backend>& info) {
      return query::backend_name(info.param);
    });

TEST(SkewDrain, StealingDrainsTheHotLane) {
  // Mechanism test: with every write routed to stripe 0 and the producer
  // never waiting mid-round, lane 0's queue builds real depth while lanes
  // 1-3 idle — their workers must steal. Scheduling decides exactly when,
  // so we submit rounds until the counter moves (each round is another
  // near-certain chance; the deadline converts "never" into a failure).
  query::service_config cfg;
  cfg.backend = backend::kdtree;  // slow writes: queues actually build
  cfg.shards = 4;
  cfg.policy = shard_policy::spatial;
  cfg.drain = drain_mode::stealing;
  cfg.ingest_window = 1;  // one lane task per ticket: maximal queue depth
  cfg.cache_capacity = 0;
  query::query_service<2> service(cfg);
  service.bootstrap(datagen::uniform<2>(600, 17));
  const double side = std::sqrt(600.0);

  auto steals = [&] {
    std::size_t n = 0;
    for (const auto& lane : service.stats().per_shard) n += lane.steals;
    return n;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int round = 0;
  while (steals() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no lane ever stole from the hot lane";
    std::vector<query::completion<2>> pending;
    for (int j = 0; j < 64; ++j) {
      // All inserts in the origin corner cube — whichever dimension the
      // stripes split on, they route to the first shard's lane.
      pending.push_back(service.submit({query::request<2>::make_insert(
          point<2>{{side * 0.01 * (j % 8),
                    side * 0.01 * ((round + j) % 10)}})}));
    }
    for (auto& c : pending) c.get();
    ++round;
  }
  service.close();
  const auto stats = service.stats();
  std::size_t total_steals = 0, total_scans = 0;
  for (const auto& lane : stats.per_shard) {
    total_steals += lane.steals;
    total_scans += lane.steal_scans;
  }
  EXPECT_GT(total_steals, 0u);
  EXPECT_GT(total_scans, 0u);
  // Stolen or not, every write must have landed exactly once.
  EXPECT_EQ(service.size(), 600u + 64u * static_cast<std::size_t>(round));
}

TEST(SkewDrain, StealPollTickIsConfigurable) {
  // steal_poll_ns sets how long an idle stealing lane waits before
  // scanning the other queues. Both a very fast tick (lanes spin hot)
  // and a tick well above the default must drain an all-hot-lane stream
  // completely and promptly — the knob tunes latency, never correctness.
  for (const std::uint64_t tick_ns : {std::uint64_t{50'000},
                                      std::uint64_t{4'000'000}}) {
    query::service_config cfg;
    cfg.backend = backend::kdtree;
    cfg.shards = 4;
    cfg.policy = shard_policy::spatial;
    cfg.drain = drain_mode::stealing;
    cfg.ingest_window = 1;
    cfg.cache_capacity = 0;
    cfg.steal_poll_ns = tick_ns;
    query::query_service<2> service(cfg);
    service.bootstrap(datagen::uniform<2>(200, 5));
    const double side = std::sqrt(200.0);

    std::vector<query::completion<2>> pending;
    for (int j = 0; j < 128; ++j) {
      pending.push_back(service.submit({query::request<2>::make_insert(
          point<2>{{side * 0.01 * (j % 8), side * 0.01 * (j % 10)}})}));
    }
    for (auto& c : pending) c.get();
    service.close();
    EXPECT_EQ(service.size(), 200u + 128u) << "tick " << tick_ns << "ns";
  }
}

TEST(SkewDrain, RebalanceFlattensShardSizesAndKeepsContents) {
  // Deterministic skew: bootstrap balanced, then pour inserts into one
  // stripe through execute(). The rebalancer must re-derive the bounds,
  // migrate mass off the hot shard, record it in service_stats, and keep
  // the stored multiset (and subsequent answers) exact.
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 4;
  cfg.policy = shard_policy::spatial;
  cfg.rebalance_threshold = 1.2;
  query::query_service<2> service(cfg);
  const auto initial = datagen::uniform<2>(400, 9);
  service.bootstrap(initial);
  const double side = std::sqrt(400.0);

  std::vector<point<2>> hot;
  std::vector<query::request<2>> writes;
  for (int i = 0; i < 600; ++i) {
    // Hot corner cube, well inside the first quartile stripe on either
    // dimension — the split dim is whichever the bootstrap box was
    // (marginally) widest on, so the cube must be hot on both.
    const point<2> p{{side / 16.0 * ((i % 13) / 13.0),
                      side / 16.0 * ((i % 29) / 29.0)}};
    hot.push_back(p);
    writes.push_back(query::request<2>::make_insert(p));
  }
  service.execute(writes);

  // The rebalance runs on the drain thread after the write group is
  // fulfilled, so execute() returning does not mean it is recorded yet.
  wait_until([&] { return service.stats().rebalances >= 1; },
             "rebalance never triggered on the skewed write group");
  const auto stats = service.stats();
  EXPECT_GE(stats.rebalances, 1u);
  EXPECT_GT(stats.rebalance_moved, 0u);
  EXPECT_EQ(service.size(), 1000u);

  // Post-rebalance the hot mass is spread: no shard holds almost
  // everything anymore (4 shards, threshold 1.2 => max well under 60%).
  std::size_t max_shard = 0;
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    max_shard = std::max(max_shard, service.shard(s).index().size());
  }
  EXPECT_LT(max_shard, 600u);

  // Contents are the exact multiset, and reads over the migrated space
  // match a fresh unsharded reference.
  auto got = service.gather();
  std::vector<point<2>> want = initial;
  want.insert(want.end(), hot.begin(), hot.end());
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);

  query::service_config ref_cfg;
  ref_cfg.backend = backend::bdltree;
  ref_cfg.shards = 1;
  query::query_service<2> reference(ref_cfg);
  reference.bootstrap(want);
  std::vector<query::request<2>> reads;
  for (int i = 0; i < 8; ++i) {
    reads.push_back(query::request<2>::make_knn(
        point<2>{{side * i / 8.0, side / 2}}, 5));
    reads.push_back(query::request<2>::make_ball(
        point<2>{{side * i / 8.0, side / 2}}, side / 10.0));
  }
  auto got_r = service.execute(reads);
  auto want_r = reference.execute(reads);
  expect_same_responses(reads, got_r.responses, want_r.responses);
}

TEST(SkewDrain, RebalanceKeepsCachedAnswersExact) {
  // Migration must invalidate cached k-NN rows on every shard it touches
  // (epochs bump through batch_erase/batch_insert): a cache-enabled
  // skewed run with rebalancing must byte-match the cache-disabled one.
  auto spec = make_skew_spec();
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 4;
  cfg.policy = shard_policy::spatial;
  cfg.rebalance_threshold = 1.2;

  auto cached_cfg = cfg;
  cached_cfg.cache_capacity = 256;
  query::query_service<2> cached(cached_cfg);
  std::vector<query::response<2>> got;
  query::run_workload<2>(cached, spec, &got);
  cached.close();

  auto uncached_cfg = cfg;
  uncached_cfg.cache_capacity = 0;
  query::query_service<2> uncached(uncached_cfg);
  std::vector<query::response<2>> want;
  query::run_workload<2>(uncached, spec, &want);
  uncached.close();

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].points, want[i].points) << "response " << i;
  }
  EXPECT_GE(cached.stats().rebalances, 1u);
  EXPECT_GT(cached.stats().cache.misses, 0u);  // the cache was in the path

  // Targeted staleness probe (skewed payloads rarely repeat keys, so the
  // stream above exercises few hits): cache a k-NN row, trigger a
  // rebalance that changes the true answer, and demand the re-query is
  // fresh — a stale row surviving migration would surface right here.
  query::query_service<2> svc(cached_cfg);
  const auto initial = datagen::uniform<2>(400, 9);
  svc.bootstrap(initial);
  const double side = std::sqrt(400.0);
  const auto q =
      query::request<2>::make_knn(point<2>{{side * 0.03, side * 0.03}}, 3);
  svc.execute({q, q});  // miss + same-run duplicate: the row is cached
  EXPECT_GT(svc.stats().cache.hits, 0u);

  std::vector<query::request<2>> block;
  for (int i = 0; i < 600; ++i) {
    block.push_back(query::request<2>::make_insert(
        point<2>{{side / 16.0 * ((i % 13) / 13.0),
                  side / 16.0 * ((i % 29) / 29.0)}}));
  }
  svc.execute(block);  // floods q's neighborhood; skew triggers rebalance
  wait_until([&] { return svc.stats().rebalances >= 1; },
             "rebalance never triggered by the hot block");

  query::service_config ref_cfg;
  ref_cfg.backend = backend::bdltree;
  ref_cfg.shards = 1;
  ref_cfg.cache_capacity = 0;
  query::query_service<2> reference(ref_cfg);
  reference.bootstrap(initial);
  reference.execute(block);
  auto got_q = svc.execute({q});
  auto want_q = reference.execute({q});
  expect_same_responses<2>({q}, got_q.responses, want_q.responses);
}

TEST(SkewDrain, RebalanceChasesDriftAtFlatResidentTotal) {
  // Regression for the trigger backoff: a balanced insert/erase stream
  // keeps the resident TOTAL flat while the hot region moves to another
  // stripe. The backoff must key on writes routed (which keep flowing),
  // not total drift (which is zero) — a total-drift backoff rebalances
  // once and then never chases the drift again.
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 4;
  cfg.policy = shard_policy::spatial;
  cfg.rebalance_threshold = 1.2;
  query::query_service<2> svc(cfg);
  svc.bootstrap(datagen::uniform<2>(400, 9));
  const double side = std::sqrt(400.0);

  // Phase 1: pour mass into the origin corner — first rebalance.
  std::vector<point<2>> hot;
  std::vector<query::request<2>> phase1;
  for (int i = 0; i < 500; ++i) {
    const point<2> p{{side / 16.0 * ((i % 13) / 13.0),
                      side / 16.0 * ((i % 29) / 29.0)}};
    hot.push_back(p);
    phase1.push_back(query::request<2>::make_insert(p));
  }
  svc.execute(phase1);
  wait_until([&] { return svc.stats().rebalances >= 1; },
             "first rebalance never triggered");

  // Phase 2: the hot region jumps to the opposite corner; every insert is
  // paired with an erase of a phase-1 point, so the total never moves.
  std::vector<query::request<2>> phase2;
  for (int i = 0; i < 500; ++i) {
    phase2.push_back(query::request<2>::make_insert(
        point<2>{{side * (0.95 + 0.04 * ((i % 13) / 13.0)),
                  side * (0.95 + 0.04 * ((i % 29) / 29.0))}}));
    phase2.push_back(query::request<2>::make_erase(hot[i]));
  }
  svc.execute(phase2);
  wait_until([&] { return svc.stats().rebalances >= 2; },
             "rebalance never chased the drifted hot region");
  EXPECT_EQ(svc.size(), 900u);
}

TEST(SkewDrain, DriftingHotRegionStaysExact) {
  // The drifting mode moves the hot cube across the space mid-stream —
  // stripes balanced for the early mass go stale. Responses must still
  // match the reference with rebalancing chasing the drift.
  auto spec = make_skew_spec();
  spec.dist = query::distribution::drifting;
  const auto reqs = query::make_requests<2>(spec);
  const auto reference =
      run_skewed(backend::zdtree, 1, drain_mode::single, 0, spec);
  const auto got =
      run_skewed(backend::zdtree, 4, drain_mode::stealing, 1.2, spec);
  expect_same_responses(reqs, got.responses, reference.responses);
  EXPECT_EQ(got.contents, reference.contents);
  EXPECT_GE(got.stats.rebalances, 1u);
}
