// Tests for geometry core: points, boxes, predicates, circumballs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aabb.h"
#include "core/ball.h"
#include "core/point.h"
#include "core/predicates.h"

using namespace pargeo;

TEST(Point, Arithmetic) {
  point<3> a{{1, 2, 3}}, b{{4, 6, 8}};
  EXPECT_EQ((a + b)[0], 5);
  EXPECT_EQ((b - a)[2], 5);
  EXPECT_EQ((a * 2.0)[1], 4);
  EXPECT_DOUBLE_EQ(a.dot(b), 4 + 12 + 24);
  EXPECT_DOUBLE_EQ(a.dist_sq(b), 9 + 16 + 25);
}

TEST(Point, LexicographicOrder) {
  point<2> a{{1, 5}}, b{{1, 6}}, c{{2, 0}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_FALSE(c < a);
}

TEST(Point, Cross3) {
  point<3> x{{1, 0, 0}}, y{{0, 1, 0}};
  auto z = cross(x, y);
  EXPECT_DOUBLE_EQ(z[2], 1.0);
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(Aabb, ExtendAndContains) {
  aabb<2> b;
  EXPECT_TRUE(b.empty());
  b.extend(point<2>{{0, 0}});
  b.extend(point<2>{{2, 3}});
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.contains(point<2>{{1, 1}}));
  EXPECT_FALSE(b.contains(point<2>{{3, 1}}));
  EXPECT_EQ(b.widest_dim(), 1);
}

TEST(Aabb, Distances) {
  aabb<2> b(point<2>{{0, 0}}, point<2>{{1, 1}});
  EXPECT_DOUBLE_EQ(b.dist_sq(point<2>{{3, 0.5}}), 4.0);
  EXPECT_DOUBLE_EQ(b.dist_sq(point<2>{{0.5, 0.5}}), 0.0);
  EXPECT_DOUBLE_EQ(b.max_dist_sq(point<2>{{0, 0}}), 2.0);
  aabb<2> c(point<2>{{3, 0}}, point<2>{{4, 1}});
  EXPECT_DOUBLE_EQ(b.dist_sq(c), 4.0);
  EXPECT_TRUE(b.intersects(aabb<2>(point<2>{{1, 1}}, point<2>{{2, 2}})));
  EXPECT_FALSE(b.intersects(c));
}

TEST(Aabb, InsideRelation) {
  aabb<2> outer(point<2>{{0, 0}}, point<2>{{10, 10}});
  aabb<2> inner(point<2>{{1, 1}}, point<2>{{2, 2}});
  EXPECT_TRUE(inner.inside(outer));
  EXPECT_FALSE(outer.inside(inner));
}

TEST(Predicates, Orient2dSigns) {
  point<2> a{{0, 0}}, b{{1, 0}};
  EXPECT_GT(orient2d(a, b, point<2>{{0, 1}}), 0);   // left
  EXPECT_LT(orient2d(a, b, point<2>{{0, -1}}), 0);  // right
  EXPECT_EQ(orient2d(a, b, point<2>{{2, 0}}), 0);   // collinear
}

TEST(Predicates, Orient2dNearDegenerate) {
  // Points nearly collinear: the filter must escalate and still give a
  // consistent sign for symmetric arguments.
  point<2> a{{0, 0}}, b{{1e7, 1e7}};
  point<2> c{{5e6, 5e6 + 1e-9}};
  const double s1 = orient2d(a, b, c);
  const double s2 = orient2d(b, a, c);
  EXPECT_GT(s1 * s2, -1);  // defined
  EXPECT_TRUE((s1 > 0) == (s2 < 0));
}

TEST(Predicates, Orient3dSigns) {
  point<3> a{{0, 0, 0}}, b{{1, 0, 0}}, c{{0, 1, 0}};
  // (a,b,c) CCW seen from +z; point below the plane has positive orient.
  EXPECT_GT(orient3d(a, b, c, point<3>{{0, 0, -1}}), 0);
  EXPECT_LT(orient3d(a, b, c, point<3>{{0, 0, 1}}), 0);
  EXPECT_EQ(orient3d(a, b, c, point<3>{{5, 5, 0}}), 0);
}

TEST(Predicates, InCircleSigns) {
  point<2> a{{0, 0}}, b{{1, 0}}, c{{0, 1}};  // CCW
  EXPECT_GT(incircle(a, b, c, point<2>{{0.3, 0.3}}), 0);
  EXPECT_LT(incircle(a, b, c, point<2>{{2, 2}}), 0);
  // (1,1) lies exactly on the circumcircle of this right triangle.
  EXPECT_EQ(incircle(a, b, c, point<2>{{1, 1}}), 0);
}

TEST(Ball, CircumballOfTwoPointsIsDiametral) {
  point<2> s[2] = {point<2>{{0, 0}}, point<2>{{2, 0}}};
  auto b = circumball<2>(s, 2);
  EXPECT_DOUBLE_EQ(b.radius, 1.0);
  EXPECT_DOUBLE_EQ(b.center[0], 1.0);
  EXPECT_DOUBLE_EQ(b.center[1], 0.0);
}

TEST(Ball, CircumballOfTriangle) {
  point<2> s[3] = {point<2>{{0, 0}}, point<2>{{2, 0}}, point<2>{{1, 1}}};
  auto b = circumball<2>(s, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(b.center.dist(s[i]), b.radius, 1e-12);
  }
}

TEST(Ball, CircumballDegenerateReturnsEmpty) {
  point<2> s[3] = {point<2>{{0, 0}}, point<2>{{1, 0}}, point<2>{{2, 0}}};
  auto b = circumball<2>(s, 3);
  EXPECT_TRUE(b.is_empty());
}

TEST(Ball, CircumballFullSupport3d) {
  point<3> s[4] = {point<3>{{1, 0, 0}}, point<3>{{-1, 0, 0}},
                   point<3>{{0, 1, 0}}, point<3>{{0, 0, 1}}};
  auto b = circumball<3>(s, 4);
  ASSERT_FALSE(b.is_empty());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(b.center.dist(s[i]), b.radius, 1e-12);
  }
}

TEST(Ball, ContainsUsesRelativeSlack) {
  ball<2> b(point<2>{{0, 0}}, 1.0);
  EXPECT_TRUE(b.contains(point<2>{{1.0 + 1e-12, 0}}));
  EXPECT_FALSE(b.contains(point<2>{{1.1, 0}}));
  ball<2> empty;
  EXPECT_TRUE(empty.is_empty());
  EXPECT_FALSE(empty.contains(point<2>{{0, 0}}));
}

TEST(Ball, SinglePointSupport) {
  point<2> s[1] = {point<2>{{3, 4}}};
  auto b = circumball<2>(s, 1);
  EXPECT_DOUBLE_EQ(b.radius, 0.0);
  EXPECT_TRUE(b.contains(point<2>{{3, 4}}));
}
