// Tests for the Zd-tree (Morton-order batch-dynamic tree, §6.3 comparison
// structure): k-NN vs brute force under batch updates.
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/datagen.h"
#include "test_util.h"
#include "zdtree/zdtree.h"

using namespace pargeo;
using zdtree::zd_tree;

namespace {

template <int D>
void check_knn(const zd_tree<D>& t, const std::vector<point<D>>& reference,
               const std::vector<point<D>>& queries, std::size_t k) {
  auto res = t.knn(queries, k);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    auto brute = testutil::brute_knn_dists(reference, queries[qi], k);
    ASSERT_EQ(res[qi].size(), brute.size());
    for (std::size_t j = 0; j < brute.size(); ++j) {
      EXPECT_EQ(res[qi][j].dist_sq(queries[qi]), brute[j]);
    }
  }
}

}  // namespace

TEST(ZdTree, BuildAndKnn) {
  auto pts = datagen::uniform<3>(5000, 3);
  zd_tree<3> t(pts);
  EXPECT_EQ(t.size(), pts.size());
  std::vector<point<3>> queries(pts.begin(), pts.begin() + 20);
  check_knn<3>(t, pts, queries, 5);
}

TEST(ZdTree, InsertMergesCorrectly) {
  auto a = datagen::uniform<2>(3000, 4);
  auto b = datagen::uniform<2>(2000, 5);
  zd_tree<2> t(a);
  t.insert(b);
  EXPECT_EQ(t.size(), a.size() + b.size());
  auto all = a;
  all.insert(all.end(), b.begin(), b.end());
  std::vector<point<2>> queries(b.begin(), b.begin() + 20);
  check_knn<2>(t, all, queries, 4);
}

TEST(ZdTree, EraseRemovesOneCopyPerEntry) {
  auto pts = datagen::uniform<2>(2000, 6);
  zd_tree<2> t(pts);
  std::vector<point<2>> del(pts.begin(), pts.begin() + 500);
  t.erase(del);
  EXPECT_EQ(t.size(), 1500u);
  std::vector<point<2>> rest(pts.begin() + 500, pts.end());
  auto got = t.gather();
  std::sort(got.begin(), got.end());
  std::sort(rest.begin(), rest.end());
  EXPECT_EQ(got, rest);
}

TEST(ZdTree, EraseNonMembersNoop) {
  auto pts = datagen::uniform<2>(500, 7);
  zd_tree<2> t(pts);
  t.erase({point<2>{{-1e6, -1e6}}});
  EXPECT_EQ(t.size(), pts.size());
}

TEST(ZdTree, DuplicateHandling) {
  std::vector<point<2>> pts(100, point<2>{{1, 1}});
  zd_tree<2> t(pts);
  t.erase({point<2>{{1, 1}}});
  EXPECT_EQ(t.size(), 99u);  // one copy removed per batch entry
}

TEST(ZdTree, MixedWorkloadAgainstModel) {
  zd_tree<2> t;
  std::vector<point<2>> model;
  auto all = datagen::visualvar<2>(4000, 8);
  std::size_t next = 0;
  for (int step = 0; step < 20; ++step) {
    if (step % 3 != 2 && next < all.size()) {
      const std::size_t take = std::min<std::size_t>(300, all.size() - next);
      std::vector<point<2>> batch(all.begin() + next,
                                  all.begin() + next + take);
      next += take;
      t.insert(batch);
      model.insert(model.end(), batch.begin(), batch.end());
    } else if (!model.empty()) {
      std::vector<point<2>> batch(model.end() -
                                      std::min<std::size_t>(200,
                                                            model.size()),
                                  model.end());
      model.resize(model.size() - batch.size());
      t.erase(batch);
    }
    ASSERT_EQ(t.size(), model.size());
  }
  if (!model.empty()) {
    std::vector<point<2>> queries(model.begin(),
                                  model.begin() +
                                      std::min<std::size_t>(10,
                                                            model.size()));
    check_knn<2>(t, model, queries, 3);
  }
}

TEST(ZdTree, EmptyTreeQueries) {
  zd_tree<2> t;
  EXPECT_EQ(t.size(), 0u);
  auto res = t.knn({point<2>{{0, 0}}}, 3);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(res[0].empty());
}
