// Unit + stress tests for the QSBR-style epoch reclaimer
// (query/epoch_reclaim.h). The stress oracle is the contract the
// un-pinned bdltree snapshots rely on: a structure version retired while
// some reader guard is active must not be destroyed until that guard
// releases — readers dereference raw pointers under the guard alone, so
// any premature free is a use-after-free ASan/TSan will catch (the tsan
// CI job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "query/epoch_reclaim.h"

using pargeo::query::epoch_reclaimer;

namespace {

// A retired payload whose destruction is observable.
struct tracked {
  explicit tracked(std::atomic<int>& freed) : freed_(freed) {}
  ~tracked() { freed_.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>& freed_;
};

}  // namespace

TEST(EpochReclaim, RetiredObjectFreedOnceNoReaderIsActive) {
  epoch_reclaimer rec;
  std::atomic<int> freed{0};
  rec.retire(std::make_shared<tracked>(freed));
  EXPECT_EQ(freed.load(), 0);  // retire never destroys inline
  EXPECT_GT(rec.advance_and_reclaim(), 0u);
  EXPECT_EQ(freed.load(), 1);
  const auto c = rec.counters();
  EXPECT_EQ(c.retired, 1u);
  EXPECT_EQ(c.reclaimed, 1u);
  EXPECT_EQ(c.limbo, 0u);
}

TEST(EpochReclaim, ActiveReaderBlocksReclaimAndCountsStalls) {
  epoch_reclaimer rec;
  std::atomic<int> freed{0};

  auto g = rec.enter();
  // Retired at an epoch the reader may have observed: must be held.
  rec.retire(std::make_shared<tracked>(freed));
  EXPECT_EQ(rec.advance_and_reclaim(), 0u);
  EXPECT_EQ(rec.advance_and_reclaim(), 0u);
  EXPECT_EQ(freed.load(), 0);
  auto held = rec.counters();
  EXPECT_GE(held.reclaim_stalls, 2u);
  EXPECT_GT(held.epoch_lag, 0u);
  EXPECT_EQ(held.limbo, 1u);

  g.release();
  EXPECT_EQ(rec.advance_and_reclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(rec.counters().limbo, 0u);
}

TEST(EpochReclaim, LateReaderDoesNotHoldEarlierRetirement) {
  epoch_reclaimer rec;
  std::atomic<int> freed{0};
  rec.retire(std::make_shared<tracked>(freed));
  // Advance so the next reader enters an epoch strictly after retirement.
  rec.advance_and_reclaim();
  auto g = rec.enter();
  // The guard pins its own epoch, not history: the old entry still frees.
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochReclaim, GuardMoveTransfersTheSlot) {
  epoch_reclaimer rec;
  std::atomic<int> freed{0};
  auto g1 = rec.enter();
  epoch_reclaimer::guard g2 = std::move(g1);
  rec.retire(std::make_shared<tracked>(freed));
  rec.advance_and_reclaim();
  EXPECT_EQ(freed.load(), 0);  // moved-to guard still pins
  g2.release();
  rec.advance_and_reclaim();
  EXPECT_EQ(freed.load(), 1);
}

// The oracle: N readers stamp in, grab the current version's raw pointer,
// and read through it for a while; M writers keep superseding the version,
// retiring the old one (dropping their own reference — the limbo list
// holds the last shared_ptr, so epoch accounting alone prevents
// use-after-free). A version destroyed while a reader holds its epoch
// trips the liveness flag (and ASan, when enabled).
TEST(EpochReclaim, StressNoVersionFreedWhileAReaderHoldsItsEpoch) {
  struct version {
    explicit version(std::uint64_t v) : value(v), alive(true) {}
    ~version() { alive.store(false, std::memory_order_seq_cst); }
    std::uint64_t value;
    std::atomic<bool> alive;
  };

  epoch_reclaimer rec;
  std::shared_ptr<version> current = std::make_shared<version>(0);
  std::mutex cur_mu;  // writers swap `current`; readers copy the raw ptr
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kRoundsPerWriter = 800;

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        epoch_reclaimer::guard g = rec.enter();
        version* raw;
        {
          std::lock_guard<std::mutex> lk(cur_mu);
          raw = current.get();  // raw: protected by the epoch alone
        }
        for (int spin = 0; spin < 50; ++spin) {
          if (!raw->alive.load(std::memory_order_seq_cst)) {
            violations.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          (void)raw->value;
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> writers;
  std::atomic<std::uint64_t> vnum{1};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kRoundsPerWriter; ++i) {
        auto fresh = std::make_shared<version>(
            vnum.fetch_add(1, std::memory_order_relaxed));
        std::shared_ptr<version> old;
        {
          std::lock_guard<std::mutex> lk(cur_mu);
          old = std::move(current);
          current = std::move(fresh);
        }
        rec.retire(std::shared_ptr<const void>(std::move(old)));
        rec.advance_and_reclaim();
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  const auto c = rec.counters();
  EXPECT_EQ(c.retired, static_cast<std::uint64_t>(kWriters) *
                           kRoundsPerWriter);
  // Everything unpinned at the end must eventually drain.
  rec.advance_and_reclaim();
  while (rec.counters().limbo > 0) rec.advance_and_reclaim();
  EXPECT_EQ(rec.counters().reclaimed, c.retired);
}
