// Tests for 2D Delaunay triangulation: empty-circumcircle property,
// combinatorial counts, orientation, and degenerate inputs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/predicates.h"
#include "datagen/datagen.h"
#include "delaunay/delaunay.h"
#include "hull/hull2d.h"

using namespace pargeo;

namespace {

void check_delaunay(const std::vector<point<2>>& pts,
                    const delaunay::triangulation& tr,
                    std::size_t point_stride = 1,
                    std::size_t tri_stride = 1) {
  for (std::size_t t = 0; t < tr.triangles.size(); t += tri_stride) {
    const auto& tri = tr.triangles[t];
    ASSERT_GT(orient2d(pts[tri[0]], pts[tri[1]], pts[tri[2]]), 0)
        << "triangle not CCW";
    for (std::size_t p = 0; p < pts.size(); p += point_stride) {
      if (p == tri[0] || p == tri[1] || p == tri[2]) continue;
      ASSERT_LE(incircle(pts[tri[0]], pts[tri[1]], pts[tri[2]], pts[p]), 0)
          << "circumcircle not empty";
    }
  }
}

}  // namespace

TEST(Delaunay, SingleTriangle) {
  std::vector<point<2>> pts{point<2>{{0, 0}}, point<2>{{1, 0}},
                            point<2>{{0, 1}}};
  auto tr = delaunay::triangulate(pts);
  ASSERT_EQ(tr.triangles.size(), 1u);
  EXPECT_EQ(tr.edges().size(), 3u);
}

TEST(Delaunay, SquareHasTwoTriangles) {
  std::vector<point<2>> pts{point<2>{{0, 0}}, point<2>{{1, 0}},
                            point<2>{{1, 1}}, point<2>{{0, 1}}};
  auto tr = delaunay::triangulate(pts);
  EXPECT_EQ(tr.triangles.size(), 2u);
  EXPECT_EQ(tr.edges().size(), 5u);
  check_delaunay(pts, tr);
}

TEST(Delaunay, EmptyCircumcirclePropertySmall) {
  auto pts = datagen::uniform<2>(300, 3);
  auto tr = delaunay::triangulate(pts);
  check_delaunay(pts, tr);
}

TEST(Delaunay, EmptyCircumcirclePropertySampledLarge) {
  auto pts = datagen::uniform<2>(20000, 4);
  auto tr = delaunay::triangulate(pts);
  check_delaunay(pts, tr, /*point_stride=*/97, /*tri_stride=*/53);
}

TEST(Delaunay, CombinatorialCountsMatchEuler) {
  // For a triangulation of n points with h hull vertices (no interior
  // duplicates): T = 2n - h - 2, E = 3n - h - 3.
  auto pts = datagen::in_sphere<2>(5000, 5);
  auto tr = delaunay::triangulate(pts);
  const std::size_t h = hull2d::sequential_quickhull(pts).size();
  const std::size_t n = pts.size();
  EXPECT_EQ(tr.triangles.size(), 2 * n - h - 2);
  EXPECT_EQ(tr.edges().size(), 3 * n - h - 3);
}

TEST(Delaunay, EveryPointAppears) {
  auto pts = datagen::visualvar<2>(2000, 6);
  auto tr = delaunay::triangulate(pts);
  std::set<std::size_t> used;
  for (const auto& t : tr.triangles) used.insert(t.begin(), t.end());
  EXPECT_EQ(used.size(), pts.size());
}

TEST(Delaunay, DuplicatePointsIgnored) {
  auto pts = datagen::uniform<2>(500, 7);
  const std::size_t n = pts.size();
  pts.insert(pts.end(), pts.begin(), pts.begin() + 100);
  auto tr = delaunay::triangulate(pts);
  std::set<std::size_t> used;
  for (const auto& t : tr.triangles) used.insert(t.begin(), t.end());
  // One copy of each duplicated point is used; the triangulation is still
  // over n distinct sites.
  EXPECT_EQ(used.size(), n);
  check_delaunay(pts, tr, 1, 13);
}

TEST(Delaunay, CollinearInputYieldsNothing) {
  std::vector<point<2>> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(point<2>{{static_cast<double>(i), 3.0}});
  }
  auto tr = delaunay::triangulate(pts);
  EXPECT_TRUE(tr.triangles.empty());
}

TEST(Delaunay, TooFewPoints) {
  std::vector<point<2>> pts{point<2>{{0, 0}}, point<2>{{1, 1}}};
  EXPECT_TRUE(delaunay::triangulate(pts).triangles.empty());
}

TEST(Delaunay, EdgesAreUniqueAndSorted) {
  auto pts = datagen::uniform<2>(3000, 8);
  auto es = delaunay::triangulate(pts).edges();
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_LT(es[i].first, es[i].second);
    if (i > 0) EXPECT_LT(es[i - 1], es[i]);
  }
}

TEST(Delaunay, GridInputWithManyCocircularities) {
  // A regular grid is maximally degenerate (4 cocircular points
  // everywhere); the triangulation must still be valid.
  std::vector<point<2>> pts;
  for (int x = 0; x < 20; ++x) {
    for (int y = 0; y < 20; ++y) {
      pts.push_back(point<2>{{static_cast<double>(x),
                              static_cast<double>(y)}});
    }
  }
  auto tr = delaunay::triangulate(pts);
  // 400 points, 76 on the boundary: T = 2n - h - 2 = 722.
  EXPECT_EQ(tr.triangles.size(), 2 * pts.size() - 76 - 2);
  for (const auto& t : tr.triangles) {
    EXPECT_GT(orient2d(pts[t[0]], pts[t[1]], pts[t[2]]), 0);
  }
}
