// Tests for Morton-code computation and Z-order sorting.
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/datagen.h"
#include "mortonsort/mortonsort.h"

using namespace pargeo;

TEST(Morton, CodeMonotoneAlongDiagonal) {
  const point<2> lo{{0, 0}}, hi{{100, 100}};
  uint64_t prev = 0;
  for (int i = 0; i <= 100; ++i) {
    const point<2> p{{static_cast<double>(i), static_cast<double>(i)}};
    const uint64_t c = mortonsort::morton_code<2>(p, lo, hi);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Morton, CornerCodes) {
  const point<2> lo{{0, 0}}, hi{{1, 1}};
  EXPECT_EQ(mortonsort::morton_code<2>(lo, lo, hi), 0u);
  const uint64_t maxCode = mortonsort::morton_code<2>(hi, lo, hi);
  EXPECT_EQ(maxCode, ~uint64_t{0});  // 32 bits per dim, all ones
}

TEST(Morton, QuantizationClampsOutOfRange) {
  const point<2> lo{{0, 0}}, hi{{1, 1}};
  const point<2> below{{-5, -5}}, above{{7, 7}};
  EXPECT_EQ(mortonsort::morton_code<2>(below, lo, hi), 0u);
  EXPECT_EQ(mortonsort::morton_code<2>(above, lo, hi),
            mortonsort::morton_code<2>(hi, lo, hi));
}

TEST(Morton, OrderIsPermutation) {
  auto pts = datagen::uniform<3>(5000, 5);
  auto ord = mortonsort::morton_order<3>(pts);
  std::vector<uint8_t> seen(pts.size(), 0);
  for (const std::size_t i : ord) {
    ASSERT_LT(i, pts.size());
    ASSERT_FALSE(seen[i]);
    seen[i] = 1;
  }
}

TEST(Morton, SortedCodesAreNondecreasing) {
  auto pts = datagen::visualvar<2>(10000, 6);
  auto sorted = mortonsort::morton_sort<2>(pts);
  auto codes = mortonsort::morton_codes<2>(sorted);
  EXPECT_TRUE(std::is_sorted(codes.begin(), codes.end()));
}

TEST(Morton, SortPreservesMultiset) {
  auto pts = datagen::uniform<2>(3000, 7);
  auto sorted = mortonsort::morton_sort<2>(pts);
  auto a = pts, b = sorted;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Morton, LocalityConsecutiveCloserThanRandom) {
  // Z-order locality: average distance between consecutive points in
  // Morton order is much smaller than between random pairs.
  auto pts = datagen::uniform<2>(20000, 8);
  auto sorted = mortonsort::morton_sort<2>(pts);
  double consecutive = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    consecutive += sorted[i].dist(sorted[i - 1]);
  }
  consecutive /= sorted.size() - 1;
  double random = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    random += pts[par::rand_range(1, i, pts.size())].dist(
        pts[par::rand_range(2, i, pts.size())]);
  }
  random /= 1000;
  EXPECT_LT(consecutive, random / 4);
}

TEST(Morton, HigherDims) {
  auto pts5 = datagen::uniform<5>(2000, 9);
  auto codes5 = mortonsort::morton_codes<5>(pts5);
  EXPECT_EQ(codes5.size(), pts5.size());
  auto pts7 = datagen::uniform<7>(2000, 10);
  auto sorted7 = mortonsort::morton_sort<7>(pts7);
  auto codes7 = mortonsort::morton_codes<7>(sorted7);
  EXPECT_TRUE(std::is_sorted(codes7.begin(), codes7.end()));
}

TEST(Morton, DegenerateSingleValue) {
  std::vector<point<2>> pts(100, point<2>{{5, 5}});
  auto codes = mortonsort::morton_codes<2>(pts);
  for (const auto c : codes) EXPECT_EQ(c, codes[0]);
  auto sorted = mortonsort::morton_sort<2>(pts);
  EXPECT_EQ(sorted.size(), pts.size());
}
