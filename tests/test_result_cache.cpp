// Hot result cache: LRU/epoch unit tests on result_cache<D> (k-NN, box,
// and ball keys — knn_result_cache is the historical alias) plus the
// end-to-end correctness oracle — a zipf stream with interleaved writes
// (and kd-tree rebuilds) answered by a cache-enabled service must be
// byte-identical to the cache-disabled run, on every backend, while
// actually hitting the cache.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "query/query_service.h"
#include "query/result_cache.h"
#include "query/workload.h"

using namespace pargeo;
using query::backend;
using query::knn_result_cache;

namespace {

point<2> pt(double x, double y) { return point<2>{{x, y}}; }

std::vector<point<2>> row(std::initializer_list<point<2>> pts) {
  return std::vector<point<2>>(pts);
}

}  // namespace

TEST(KnnResultCache, MissThenStoreThenHit) {
  knn_result_cache<2> cache(8);
  std::vector<point<2>> out;
  EXPECT_FALSE(cache.lookup(pt(1, 2), 3, 7, out));
  cache.store(pt(1, 2), 3, 7, row({pt(1, 2), pt(1, 3)}));
  ASSERT_TRUE(cache.lookup(pt(1, 2), 3, 7, out));
  EXPECT_EQ(out, row({pt(1, 2), pt(1, 3)}));
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(KnnResultCache, KeyCoversPointKAndEpoch) {
  knn_result_cache<2> cache(16);
  cache.store(pt(1, 1), 2, 5, row({pt(1, 1)}));
  std::vector<point<2>> out;
  // Same point+k, later epoch: the write invalidated the entry.
  EXPECT_FALSE(cache.lookup(pt(1, 1), 2, 6, out));
  // Same point+epoch, different k.
  EXPECT_FALSE(cache.lookup(pt(1, 1), 3, 5, out));
  // Different point.
  EXPECT_FALSE(cache.lookup(pt(1, 2), 2, 5, out));
  // The original key still hits (stale epochs age out via LRU, they are
  // not flushed).
  EXPECT_TRUE(cache.lookup(pt(1, 1), 2, 5, out));
}

TEST(KnnResultCache, NegativeZeroKeysLikeZero) {
  knn_result_cache<2> cache(4);
  point<2> neg = pt(0.0, 1.0);
  neg[0] = -0.0;
  cache.store(pt(0.0, 1.0), 1, 1, row({pt(0.0, 1.0)}));
  std::vector<point<2>> out;
  EXPECT_TRUE(cache.lookup(neg, 1, 1, out));  // -0.0 == 0.0 as a point
}

TEST(KnnResultCache, LruEvictsLeastRecentlyUsed) {
  knn_result_cache<2> cache(2);
  cache.store(pt(1, 0), 1, 1, row({pt(1, 0)}));
  cache.store(pt(2, 0), 1, 1, row({pt(2, 0)}));
  std::vector<point<2>> out;
  ASSERT_TRUE(cache.lookup(pt(1, 0), 1, 1, out));  // refresh A
  cache.store(pt(3, 0), 1, 1, row({pt(3, 0)}));    // evicts B (LRU)
  EXPECT_FALSE(cache.lookup(pt(2, 0), 1, 1, out));
  EXPECT_TRUE(cache.lookup(pt(1, 0), 1, 1, out));
  EXPECT_TRUE(cache.lookup(pt(3, 0), 1, 1, out));
  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(KnnResultCache, DuplicateStoreKeepsOneEntry) {
  knn_result_cache<2> cache(4);
  cache.store(pt(1, 1), 1, 1, row({pt(1, 1)}));
  cache.store(pt(1, 1), 1, 1, row({pt(1, 1)}));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(KnnResultCache, CapacityZeroDisablesEverything) {
  knn_result_cache<2> cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.store(pt(1, 1), 1, 1, row({pt(1, 1)}));
  std::vector<point<2>> out;
  EXPECT_FALSE(cache.lookup(pt(1, 1), 1, 1, out));
  const auto s = cache.stats();  // disabled instances count nothing
  EXPECT_EQ(s.hits + s.misses + s.entries + s.evictions, 0u);
}

TEST(ResultCache, BoxKeyCoversCornersAndEpoch) {
  query::result_cache<2> cache(16);
  using key = query::detail::result_key<2>;
  const aabb<2> box(pt(0, 0), pt(4, 4));
  cache.store(key::box(box, 3), row({pt(1, 1), pt(2, 2)}));
  std::vector<point<2>> out;
  ASSERT_TRUE(cache.lookup(key::box(box, 3), out));
  EXPECT_EQ(out, row({pt(1, 1), pt(2, 2)}));
  // Any corner or epoch change is a different key.
  EXPECT_FALSE(cache.lookup(key::box(aabb<2>(pt(0, 0), pt(4, 5)), 3), out));
  EXPECT_FALSE(cache.lookup(key::box(aabb<2>(pt(0, 1), pt(4, 4)), 3), out));
  EXPECT_FALSE(cache.lookup(key::box(box, 4), out));
}

TEST(ResultCache, BallKeyCoversCenterRadiusAndEpoch) {
  query::result_cache<2> cache(16);
  using key = query::detail::result_key<2>;
  cache.store(key::ball(pt(2, 2), 1.5, 9), row({pt(2, 2)}));
  std::vector<point<2>> out;
  ASSERT_TRUE(cache.lookup(key::ball(pt(2, 2), 1.5, 9), out));
  EXPECT_FALSE(cache.lookup(key::ball(pt(2, 2), 1.25, 9), out));
  EXPECT_FALSE(cache.lookup(key::ball(pt(2, 3), 1.5, 9), out));
  EXPECT_FALSE(cache.lookup(key::ball(pt(2, 2), 1.5, 10), out));
}

TEST(ResultCache, QueryShapesNeverCollide) {
  // A k-NN probe at p with k, a ball at p whose radius bits happen to
  // equal k, and a degenerate box [p, p] all share their geometry bits:
  // the kind tag must keep the three result rows apart.
  query::result_cache<2> cache(16);
  using key = query::detail::result_key<2>;
  const point<2> p = pt(3, 3);
  cache.store(key::knn(p, 2, 1), row({pt(1, 1)}));
  cache.store(key::box(aabb<2>(p, p), 1), row({pt(2, 2)}));
  cache.store(key::ball(p, 0.5, 1), row({pt(3, 3)}));
  EXPECT_EQ(cache.stats().entries, 3u);
  std::vector<point<2>> out;
  ASSERT_TRUE(cache.lookup(key::knn(p, 2, 1), out));
  EXPECT_EQ(out, row({pt(1, 1)}));
  ASSERT_TRUE(cache.lookup(key::box(aabb<2>(p, p), 1), out));
  EXPECT_EQ(out, row({pt(2, 2)}));
  ASSERT_TRUE(cache.lookup(key::ball(p, 0.5, 1), out));
  EXPECT_EQ(out, row({pt(3, 3)}));
}

TEST(KnnResultCache, AddHitsIsGatedByEnabled) {
  // Regression: add_hits (the same-run dedup accounting path) skipped the
  // enabled() guard, so a disabled cache could still report nonzero hits
  // — stats claiming cache activity on a cache_capacity=0 service.
  knn_result_cache<2> disabled(0);
  disabled.add_hits(3);
  EXPECT_EQ(disabled.stats().hits, 0u);

  knn_result_cache<2> enabled(4);
  enabled.add_hits(3);  // enabled instances do count dedup hits
  EXPECT_EQ(enabled.stats().hits, 3u);
}

namespace {

// Runs `spec` through a service configured by `cfg` and collects every
// response in stream order.
std::vector<query::response<2>> run_service(query::service_config cfg,
                                            const query::workload_spec& spec,
                                            query::service_stats* out_stats) {
  query::query_service<2> service(cfg);
  std::vector<query::response<2>> responses;
  query::run_workload<2>(service, spec, &responses);
  service.close();
  if (out_stats) *out_stats = service.stats();
  return responses;
}

class CacheOracle : public ::testing::TestWithParam<backend> {};

}  // namespace

// The acceptance property of the cache: cached k-NN answers are
// byte-identical to fresh-tree answers across interleaved writes and
// rebuilds. Zipf keys make the stream cache-friendly; a small kdtree
// rebuild threshold forces frequent rebuilds under the same epochs the
// cache keys on; a small capacity forces LRU evictions mid-stream.
TEST_P(CacheOracle, CachedAnswersEqualFreshAnswers) {
  query::workload_spec spec;
  spec.initial_points = 500;
  spec.num_ops = 3000;
  spec.batch_size = 256;
  spec.k = 5;
  spec.dist = query::distribution::zipf;
  spec.zipf_s = 1.4;
  spec.zipf_hot_frac = 0.9;
  spec.insert_frac = 0.05;
  spec.erase_frac = 0.05;
  spec.knn_frac = 0.7;
  spec.range_frac = 0.1;
  spec.ball_frac = 0.1;

  query::service_config cfg;
  cfg.backend = GetParam();
  cfg.shards = 3;
  cfg.policy = query::shard_policy::hash;
  cfg.index.kdtree_rebuild_threshold = 0.02;  // rebuild often

  auto cached_cfg = cfg;
  cached_cfg.cache_capacity = 96;  // small: forces evictions too
  auto uncached_cfg = cfg;
  uncached_cfg.cache_capacity = 0;

  query::service_stats cached_stats;
  query::service_stats uncached_stats;
  const auto got = run_service(cached_cfg, spec, &cached_stats);
  const auto want = run_service(uncached_cfg, spec, &uncached_stats);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << "response " << i;
    // Exact point-for-point equality, not just matching distances: a hit
    // replays the very rows the tree produced.
    EXPECT_EQ(got[i].points, want[i].points) << "response " << i;
  }
  // The oracle only proves something if the cache actually served hits
  // and churned.
  EXPECT_GT(cached_stats.cache.hits, 0u);
  EXPECT_GT(cached_stats.cache.evictions, 0u);
  EXPECT_EQ(uncached_stats.cache.hits, 0u);
  EXPECT_EQ(uncached_stats.cache.misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CacheOracle,
    ::testing::Values(backend::kdtree, backend::zdtree, backend::bdltree),
    [](const ::testing::TestParamInfo<backend>& info) {
      return query::backend_name(info.param);
    });

TEST(CacheService, RepeatedHotKeyHitsWithoutWrites) {
  // Pure-read traffic on a frozen index: every repeat of a (point, k) key
  // after the first is a hit, on the snapshot path.
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 2;
  cfg.cache_capacity = 64;
  query::query_service<2> service(cfg);
  service.bootstrap(datagen::uniform<2>(400, 3));

  std::vector<query::request<2>> batch;
  for (int rep = 0; rep < 10; ++rep) {
    batch.push_back(query::request<2>::make_knn(point<2>{{5.0, 5.0}}, 4));
  }
  auto r = service.execute(batch);
  for (const auto& resp : r.responses) {
    EXPECT_EQ(resp.points.size(), 4u);
    EXPECT_EQ(resp.points, r.responses[0].points);
  }
  service.close();
  const auto stats = service.stats();
  // 2 shards x 10 probes: the first probe per shard misses, the rest hit.
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.hits, 18u);
  EXPECT_GE(stats.cache.hit_rate(), 0.5);
}

TEST(CacheService, RangeAndBallQueriesHitTheCache) {
  // The generalized cache memoizes box and ball rows too, under the same
  // epoch keys as k-NN.
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 2;
  cfg.cache_capacity = 64;
  query::query_service<2> service(cfg);
  service.bootstrap(datagen::uniform<2>(400, 3));

  std::vector<query::request<2>> batch;
  const aabb<2> box(point<2>{{2, 2}}, point<2>{{8, 8}});
  for (int rep = 0; rep < 6; ++rep) {
    batch.push_back(query::request<2>::make_range(box));
    batch.push_back(query::request<2>::make_ball(point<2>{{5, 5}}, 2.5));
  }
  auto r = service.execute(batch);
  for (std::size_t i = 2; i < r.responses.size(); ++i) {
    EXPECT_EQ(r.responses[i].points, r.responses[i - 2].points)
        << "response " << i;
  }
  service.close();
  const auto stats = service.stats();
  // 2 shards x 2 shapes x 6 probes: first probe per (shard, shape) misses.
  EXPECT_EQ(stats.cache.misses, 4u);
  EXPECT_EQ(stats.cache.hits, 20u);
}

TEST(CacheService, WritesInvalidateThroughEpochs) {
  // A write between two identical k-NN queries must produce a fresh
  // (and different) answer: the epoch key fences the stale row off.
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 1;
  cfg.cache_capacity = 64;
  query::query_service<2> service(cfg);
  service.bootstrap({point<2>{{0, 0}}, point<2>{{10, 10}}});

  const auto q = query::request<2>::make_knn(point<2>{{1, 1}}, 1);
  auto r1 = service.execute({q, q});  // miss then hit
  EXPECT_TRUE(r1.responses[0].points[0] == (point<2>{{0, 0}}));
  auto r2 = service.execute({query::request<2>::make_insert(point<2>{{1, 1}}),
                             q});
  EXPECT_TRUE(r2.responses[1].points[0] == (point<2>{{1, 1}}))
      << "stale cached answer served across a write";
  service.close();
  const auto stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 2u);
}
