// Tests for the static parallel kd-tree: construction invariants, k-NN
// and range search vs brute force, across dims / split policies /
// distributions (parameterized sweeps).
#include <gtest/gtest.h>

#include <set>

#include "datagen/datagen.h"
#include "kdtree/kdtree.h"
#include "test_util.h"

using namespace pargeo;
using kdtree::split_policy;

namespace {

template <int D>
void check_structure(const kdtree::tree<D>& t) {
  // Every node's box contains its points; children partition the range.
  std::vector<const typename kdtree::tree<D>::node*> stack{t.root()};
  while (!stack.empty()) {
    const auto* nd = stack.back();
    stack.pop_back();
    for (std::size_t i = nd->lo; i < nd->hi; ++i) {
      ASSERT_TRUE(nd->box.contains(t.point_at(i)));
    }
    if (!nd->is_leaf()) {
      ASSERT_EQ(nd->left->lo, nd->lo);
      ASSERT_EQ(nd->left->hi, nd->right->lo);
      ASSERT_EQ(nd->right->hi, nd->hi);
      ASSERT_GT(nd->left->size(), 0u);
      ASSERT_GT(nd->right->size(), 0u);
      stack.push_back(nd->left);
      stack.push_back(nd->right);
    }
  }
}

}  // namespace

TEST(Kdtree, EmptyInputBuildsAndQueriesReturnNothing) {
  std::vector<point<2>> empty;
  kdtree::tree<2> t(empty);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.knn(point<2>{{1, 2}}, 3).empty());
  aabb<2> qb(point<2>{{-10, -10}}, point<2>{{10, 10}});
  EXPECT_TRUE(t.range_box(qb).empty());
  EXPECT_TRUE(t.range_ball(point<2>{{0, 0}}, 100.0).empty());
}

TEST(Kdtree, SinglePoint) {
  std::vector<point<2>> pts{point<2>{{1, 2}}};
  kdtree::tree<2> t(pts);
  auto nn = t.knn(point<2>{{0, 0}}, 3);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 0u);
}

TEST(Kdtree, StructureInvariantsBothPolicies) {
  auto pts = datagen::uniform<3>(20000, 3);
  kdtree::tree<3> obj(pts, split_policy::object_median);
  kdtree::tree<3> spa(pts, split_policy::spatial_median);
  check_structure(obj);
  check_structure(spa);
}

TEST(Kdtree, DuplicatePointsBuildAndQuery) {
  std::vector<point<2>> pts(1000, point<2>{{5, 5}});
  for (int i = 0; i < 100; ++i) {
    pts.push_back(point<2>{{static_cast<double>(i), 0}});
  }
  kdtree::tree<2> t(pts);
  check_structure(t);
  auto nn = t.knn(point<2>{{5, 5}}, 4);
  ASSERT_EQ(nn.size(), 4u);
  for (const auto& e : nn) EXPECT_EQ(e.dist_sq, 0.0);
}

TEST(Kdtree, KnnKLargerThanN) {
  auto pts = datagen::uniform<2>(10, 1);
  kdtree::tree<2> t(pts);
  auto nn = t.knn(pts[0], 100);
  EXPECT_EQ(nn.size(), 10u);
}

TEST(Kdtree, RangeBoxMatchesBrute) {
  auto pts = datagen::uniform<2>(5000, 4);
  kdtree::tree<2> t(pts);
  const double side = std::sqrt(5000.0);
  for (int trial = 0; trial < 20; ++trial) {
    const double x = par::rand_double(1, trial) * side;
    const double y = par::rand_double(2, trial) * side;
    const double w = par::rand_double(3, trial) * side / 4;
    aabb<2> qb(point<2>{{x, y}}, point<2>{{x + w, y + w}});
    auto got = t.range_box(qb);
    std::vector<std::size_t> expect;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (qb.contains(pts[i])) expect.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(Kdtree, RangeBallMatchesBrute) {
  auto pts = datagen::in_sphere<3>(5000, 5);
  kdtree::tree<3> t(pts);
  for (int trial = 0; trial < 20; ++trial) {
    const auto& c = pts[trial * 131 % pts.size()];
    const double r = 1.0 + par::rand_double(7, trial) * 10;
    auto got = t.range_ball(c, r);
    auto expect = testutil::brute_range_ball(pts, c, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(Kdtree, KnnBatchMatchesSingle) {
  auto pts = datagen::uniform<2>(3000, 6);
  kdtree::tree<2> t(pts);
  std::vector<point<2>> queries(pts.begin(), pts.begin() + 50);
  auto batch = t.knn_batch(queries, 5);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto single = t.knn(queries[i], 5);
    ASSERT_EQ(batch[i].size(), single.size());
    for (std::size_t k = 0; k < single.size(); ++k) {
      EXPECT_EQ(batch[i][k].dist_sq, single[k].dist_sq);
    }
  }
}

// ---- parameterized sweep: dims x split policy x distribution ----------

struct SweepParam {
  int dim;
  split_policy policy;
  int dist;  // 0 uniform, 1 in_sphere, 2 visualvar
};

class KdtreeSweep : public ::testing::TestWithParam<SweepParam> {};

template <int D>
void run_knn_sweep(split_policy pol, int dist) {
  std::vector<point<D>> pts;
  switch (dist) {
    case 0: pts = datagen::uniform<D>(4000, 17); break;
    case 1: pts = datagen::in_sphere<D>(4000, 18); break;
    default: pts = datagen::visualvar<D>(4000, 19); break;
  }
  kdtree::tree<D> t(pts, pol);
  for (int q = 0; q < 25; ++q) {
    const auto& qp = pts[(q * 157) % pts.size()];
    auto nn = t.knn(qp, 6);
    auto brute = testutil::brute_knn_dists(pts, qp, 6);
    ASSERT_EQ(nn.size(), brute.size());
    for (std::size_t k = 0; k < brute.size(); ++k) {
      EXPECT_EQ(nn[k].dist_sq, brute[k]) << "dim=" << D << " k=" << k;
    }
  }
}

TEST_P(KdtreeSweep, KnnMatchesBruteForce) {
  const auto p = GetParam();
  switch (p.dim) {
    case 2: run_knn_sweep<2>(p.policy, p.dist); break;
    case 3: run_knn_sweep<3>(p.policy, p.dist); break;
    case 5: run_knn_sweep<5>(p.policy, p.dist); break;
    case 7: run_knn_sweep<7>(p.policy, p.dist); break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimPolicyDist, KdtreeSweep,
    ::testing::Values(
        SweepParam{2, split_policy::object_median, 0},
        SweepParam{2, split_policy::spatial_median, 0},
        SweepParam{2, split_policy::object_median, 2},
        SweepParam{3, split_policy::object_median, 1},
        SweepParam{3, split_policy::spatial_median, 2},
        SweepParam{5, split_policy::object_median, 0},
        SweepParam{5, split_policy::spatial_median, 1},
        SweepParam{7, split_policy::object_median, 0},
        SweepParam{7, split_policy::spatial_median, 0}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "d" + std::to_string(info.param.dim) +
             (info.param.policy == split_policy::object_median ? "_obj"
                                                               : "_spa") +
             "_dist" + std::to_string(info.param.dist);
    });

TEST(Kdtree, LeafSizeOneWorks) {
  auto pts = datagen::uniform<2>(500, 21);
  kdtree::tree<2> t(pts, split_policy::object_median, 1);
  check_structure(t);
  auto nn = t.knn(pts[17], 3);
  auto brute = testutil::brute_knn_dists(pts, pts[17], 3);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(nn[k].dist_sq, brute[k]);
}

TEST(Kdtree, IdsMapBackToInputOrder) {
  auto pts = datagen::uniform<2>(2000, 22);
  kdtree::tree<2> t(pts);
  std::set<std::size_t> ids;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[t.id_of(i)], t.point_at(i));
    ids.insert(t.id_of(i));
  }
  EXPECT_EQ(ids.size(), pts.size());
}
