// Tests for the Euclidean minimum spanning tree vs Prim's algorithm.
#include <gtest/gtest.h>

#include <numeric>

#include "datagen/datagen.h"
#include "emst/emst.h"
#include "test_util.h"

using namespace pargeo;

namespace {

// Union-find for spanning-ness checks.
struct dsu {
  std::vector<std::size_t> p;
  explicit dsu(std::size_t n) : p(n) {
    std::iota(p.begin(), p.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (p[x] != x) x = p[x] = p[p[x]];
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    p[a] = b;
    return true;
  }
};

template <int D>
void check_spanning_tree(const std::vector<point<D>>& pts,
                         const std::vector<emst::edge>& mst) {
  ASSERT_EQ(mst.size(), pts.size() - 1);
  dsu uf(pts.size());
  for (const auto& e : mst) {
    ASSERT_LT(e.u, pts.size());
    ASSERT_LT(e.v, pts.size());
    ASSERT_NE(e.u, e.v);
    ASSERT_NEAR(e.weight, pts[e.u].dist(pts[e.v]), 1e-9);
    ASSERT_TRUE(uf.unite(e.u, e.v)) << "cycle in MST";
  }
}

}  // namespace

struct EmstParam {
  int dim;
  int dist;
  std::size_t n;
};

class EmstSweep : public ::testing::TestWithParam<EmstParam> {};

template <int D>
void run_emst(int dist, std::size_t n) {
  std::vector<point<D>> pts;
  switch (dist) {
    case 0: pts = datagen::uniform<D>(n, 61); break;
    case 1: pts = datagen::seed_spreader<D>(n, 62); break;
    default: pts = datagen::on_sphere<D>(n, 63); break;
  }
  auto mst = emst::emst<D>(pts);
  check_spanning_tree(pts, mst);
  const double ref = testutil::prim_weight(pts);
  EXPECT_NEAR(emst::total_weight(mst), ref, 1e-8 * ref);
}

TEST_P(EmstSweep, MatchesPrimWeight) {
  const auto p = GetParam();
  switch (p.dim) {
    case 2: run_emst<2>(p.dist, p.n); break;
    case 3: run_emst<3>(p.dist, p.n); break;
    case 5: run_emst<5>(p.dist, p.n); break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimDistSize, EmstSweep,
    ::testing::Values(EmstParam{2, 0, 600}, EmstParam{2, 1, 600},
                      EmstParam{2, 2, 400}, EmstParam{3, 0, 500},
                      EmstParam{3, 1, 400}, EmstParam{5, 0, 300},
                      EmstParam{2, 0, 5}, EmstParam{2, 0, 2}),
    [](const ::testing::TestParamInfo<EmstParam>& info) {
      return "d" + std::to_string(info.param.dim) + "_dist" +
             std::to_string(info.param.dist) + "_n" +
             std::to_string(info.param.n);
    });

TEST(Emst, TrivialInputs) {
  std::vector<point<2>> empty;
  EXPECT_TRUE(emst::emst<2>(empty).empty());
  std::vector<point<2>> one{point<2>{{1, 1}}};
  EXPECT_TRUE(emst::emst<2>(one).empty());
  std::vector<point<2>> two{point<2>{{0, 0}}, point<2>{{3, 4}}};
  auto mst = emst::emst<2>(two);
  ASSERT_EQ(mst.size(), 1u);
  EXPECT_NEAR(mst[0].weight, 5.0, 1e-12);
}

TEST(Emst, DuplicatePointsYieldZeroEdges) {
  auto pts = datagen::uniform<2>(200, 71);
  pts.push_back(pts[0]);
  pts.push_back(pts[1]);
  auto mst = emst::emst<2>(pts);
  check_spanning_tree(pts, mst);
  std::size_t zeros = 0;
  for (const auto& e : mst) zeros += e.weight == 0.0 ? 1 : 0;
  EXPECT_EQ(zeros, 2u);
}

TEST(Emst, EdgesSortedByWeight) {
  auto pts = datagen::uniform<2>(500, 72);
  auto mst = emst::emst<2>(pts);
  for (std::size_t i = 1; i < mst.size(); ++i) {
    EXPECT_LE(mst[i - 1].weight, mst[i].weight);
  }
}

TEST(Emst, ClusteredDataLargerScale) {
  auto pts = datagen::seed_spreader<2>(1200, 73);
  auto mst = emst::emst<2>(pts);
  check_spanning_tree(pts, mst);
  const double ref = testutil::prim_weight(pts);
  EXPECT_NEAR(emst::total_weight(mst), ref, 1e-8 * ref);
}
