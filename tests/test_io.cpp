// Tests for point-set and edge-list I/O: round trips, precision, and
// malformed-input diagnostics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "datagen/datagen.h"
#include "io/io.h"

using namespace pargeo;

namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    return testing::TempDir() + "pargeo_io_" + name;
  }
};

}  // namespace

TEST_F(IoTest, CsvRoundTripExact) {
  auto pts = datagen::uniform<3>(1000, 3);
  const auto p = path("pts3.csv");
  io::write_csv<3>(p, pts);
  auto back = io::read_csv<3>(p);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i], pts[i]);  // 17 significant digits: exact round trip
  }
  std::remove(p.c_str());
}

TEST_F(IoTest, BinaryRoundTripExact) {
  auto pts = datagen::visualvar<5>(2000, 4);
  const auto p = path("pts5.bin");
  io::write_binary<5>(p, pts);
  auto back = io::read_binary<5>(p);
  EXPECT_EQ(back, pts);
  std::remove(p.c_str());
}

TEST_F(IoTest, EmptySets) {
  const auto p = path("empty.csv");
  io::write_csv<2>(p, {});
  EXPECT_TRUE(io::read_csv<2>(p).empty());
  std::remove(p.c_str());
  const auto b = path("empty.bin");
  io::write_binary<2>(b, {});
  EXPECT_TRUE(io::read_binary<2>(b).empty());
  std::remove(b.c_str());
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(io::read_csv<2>(path("does_not_exist.csv")),
               std::runtime_error);
  EXPECT_THROW(io::read_binary<2>(path("does_not_exist.bin")),
               std::runtime_error);
}

TEST_F(IoTest, WrongColumnCountThrows) {
  const auto p = path("bad_cols.csv");
  {
    std::ofstream out(p);
    out << "1.0,2.0,3.0\n";  // 3 columns, read as 2D
  }
  EXPECT_THROW(io::read_csv<2>(p), std::runtime_error);
  std::remove(p.c_str());
}

TEST_F(IoTest, BadNumberThrows) {
  const auto p = path("bad_num.csv");
  {
    std::ofstream out(p);
    out << "1.0,banana\n";
  }
  EXPECT_THROW(io::read_csv<2>(p), std::runtime_error);
  std::remove(p.c_str());
}

TEST_F(IoTest, BinaryDimensionMismatchThrows) {
  auto pts = datagen::uniform<3>(10, 5);
  const auto p = path("dim3.bin");
  io::write_binary<3>(p, pts);
  EXPECT_THROW(io::read_binary<2>(p), std::runtime_error);
  std::remove(p.c_str());
}

TEST_F(IoTest, TruncatedBinaryThrows) {
  auto pts = datagen::uniform<2>(100, 6);
  const auto p = path("trunc.bin");
  io::write_binary<2>(p, pts);
  // Truncate the payload.
  std::ofstream out(p, std::ios::binary | std::ios::in);
  out.seekp(16 + 50 * 2 * sizeof(double));
  out.close();
  std::ifstream check(p, std::ios::binary | std::ios::ate);
  (void)check;
  // Rewrite a shorter file to simulate truncation portably.
  {
    std::ifstream in(p, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream outw(p, std::ios::binary | std::ios::trunc);
    outw.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(io::read_binary<2>(p), std::runtime_error);
  std::remove(p.c_str());
}

TEST_F(IoTest, EdgeListWrite) {
  const auto p = path("edges.csv");
  io::write_edges(p, {{0, 1}, {2, 3}});
  std::ifstream in(p);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "0,1");
  EXPECT_EQ(l2, "2,3");
  std::remove(p.c_str());
}

TEST_F(IoTest, CsvBlankLinesIgnored) {
  const auto p = path("blank.csv");
  {
    std::ofstream out(p);
    out << "1.0,2.0\n\n3.0,4.0\n";
  }
  auto pts = io::read_csv<2>(p);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1][0], 3.0);
  std::remove(p.c_str());
}
