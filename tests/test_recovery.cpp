// Crash-recovery integration suite: deterministic fault injection
// (query/fault.h) kills a durable primary at each named seam — log
// append, log file write (torn), checkpoint serialize, lane execute —
// on every backend, then `query_service::recover()` rebuilds from the
// directory and must byte-identically reproduce the committed history.
// The oracle for log-only recovery is a fresh service replaying the
// salvaged log through apply_replayed(): both sides re-issue the
// identical per-shard call sequence, so resident sets AND k-NN/range/
// ball rows (tie order included) compare exactly. Checkpoint-rebuilt
// trees are structurally different from incrementally built ones, so
// checkpoint scenarios compare canonically (sorted resident multisets,
// distance sequences, range multisets) against the pre-crash primary.
// Also here: torn-tail edge cases at the service level (cut inside a
// frame, inside a checksum, zero-length tail), replica self-healing
// (ring-eviction and replay-divergence resync from checkpoint,
// quarantine without a source), and request-deadline shedding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <dirent.h>

#include "query/fault.h"
#include "query/replica.h"
#include "query/query_service.h"
#include "test_query_util.h"

using namespace pargeo;
using query::backend;
using query::op;
using query::request;
using query::service_config;
using query::shard_policy;
using query::sync_policy;
namespace fault = query::fault;

namespace {

point<2> P(double x, double y) {
  point<2> p;
  p[0] = x;
  p[1] = y;
  return p;
}

double frac(double v) { return v - static_cast<long long>(v); }

// A disposable directory under the test temp root.
std::string fresh_dir() {
  std::string tmpl = std::string(::testing::TempDir()) + "pargeo_recXXXXXX";
  char* got = ::mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

void remove_dir(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> buf;
  unsigned char chunk[4096];
  std::size_t got;
  while (f && (got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  if (f) std::fclose(f);
  return buf;
}

void spit(const std::string& path, const std::vector<unsigned char>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
  ASSERT_EQ(std::fclose(f), 0);
}

service_config base_cfg(backend b, const std::string& log_dir) {
  service_config cfg;
  cfg.backend = b;
  cfg.shards = 2;
  cfg.policy = shard_policy::spatial;
  cfg.log_dir = log_dir;
  cfg.sync = sync_policy::every_commit;  // every acked batch is durable
  // Pinned (not just defaulted): the crash/recovery matrix must keep
  // passing with the lock-free ingest ring in the submit path.
  cfg.ingest = query::ingest_mode::lockfree;
  return cfg;
}

std::vector<point<2>> initial_points(std::size_t n) {
  std::vector<point<2>> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(P(frac(0.137 * (i + 1)), frac(0.219 * (i + 1))));
  }
  return pts;
}

// Deterministic traffic: each batch inserts 12 fresh points and, from
// batch 2 on, erases 3 points inserted two batches earlier — the mirror
// of any acked prefix is exactly computable.
struct traffic_plan {
  std::vector<std::vector<request<2>>> batches;
  std::vector<std::vector<point<2>>> ins;
  std::vector<std::vector<point<2>>> del;
};

traffic_plan make_traffic(std::size_t nbatches) {
  traffic_plan t;
  for (std::size_t b = 0; b < nbatches; ++b) {
    std::vector<request<2>> reqs;
    std::vector<point<2>> ins;
    for (std::size_t j = 0; j < 12; ++j) {
      const point<2> p =
          P(frac(0.311 * (b * 12 + j + 1)), frac(0.477 * (b * 12 + j + 1)));
      ins.push_back(p);
      reqs.push_back(request<2>::make_insert(p));
    }
    std::vector<point<2>> del;
    if (b >= 2) {
      for (std::size_t j = 0; j < 3; ++j) {
        del.push_back(t.ins[b - 2][j]);
        reqs.push_back(request<2>::make_erase(t.ins[b - 2][j]));
      }
    }
    t.batches.push_back(std::move(reqs));
    t.ins.push_back(std::move(ins));
    t.del.push_back(std::move(del));
  }
  return t;
}

// Resident multiset after `acked` successful batches.
std::vector<point<2>> mirror_after(const traffic_plan& t, std::size_t initial,
                                   std::size_t acked) {
  std::vector<point<2>> m = initial_points(initial);
  for (std::size_t b = 0; b < acked; ++b) {
    m.insert(m.end(), t.ins[b].begin(), t.ins[b].end());
    for (const auto& p : t.del[b]) {
      const auto it = std::find(m.begin(), m.end(), p);
      EXPECT_NE(it, m.end()) << "mirror erase of absent point";
      if (it != m.end()) m.erase(it);
    }
  }
  std::sort(m.begin(), m.end());
  return m;
}

std::vector<request<2>> probe_batch() {
  std::vector<request<2>> probes;
  for (int i = 0; i < 12; ++i) {
    probes.push_back(request<2>::make_knn(
        P(frac(0.083 * (i + 1)), frac(0.291 * (i + 1))), 4));
  }
  for (int i = 0; i < 4; ++i) {
    probes.push_back(request<2>::make_range(
        aabb<2>(P(0.2 * i, 0.1), P(0.2 * i + 0.35, 0.85))));
  }
  for (int i = 0; i < 4; ++i) {
    probes.push_back(
        request<2>::make_ball(P(frac(0.31 * i + 0.2), 0.5), 0.15 + 0.05 * i));
  }
  return probes;
}

// Byte-identical oracle: same rows, same order, same coordinates.
void expect_identical_responses(const std::vector<query::response<2>>& got,
                                const std::vector<query::response<2>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].points, want[i].points) << "response " << i;
  }
}

void expect_resident(query::query_service<2>& svc,
                     const std::vector<point<2>>& want_sorted) {
  auto got = svc.gather();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want_sorted);
}

// Drives batches until one fails ("the crash"); returns how many acked.
std::size_t run_until_crash(query::query_service<2>& svc,
                            const traffic_plan& t) {
  std::size_t acked = 0;
  for (const auto& batch : t.batches) {
    try {
      svc.execute(batch);
      ++acked;
    } catch (const std::exception&) {
      break;
    }
  }
  return acked;
}

// Log-only reference: a fresh service replaying the salvaged log — the
// ground truth recover() must match byte-for-byte.
std::unique_ptr<query::query_service<2>> reference_from_log(
    const std::string& dir, service_config cfg) {
  cfg.log_dir.clear();
  auto ref = std::make_unique<query::query_service<2>>(cfg);
  const auto log = query::op_log<2>::read_log(dir + "/oplog.pgol");
  const std::uint64_t head = log->head();
  for (auto& g : log->read_from(log->start_after())) {
    ref->apply_replayed(std::move(g));
  }
  while (ref->applied_epoch() < head) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ref->wait_lanes_idle();
  return ref;
}

// One crash-matrix cell: bootstrap, run traffic with `spec` armed at
// `point`, treat the first failed batch as the crash, recover, and
// compare byte-identically against the salvaged-log reference. Returns
// the recovered service for scenario-specific assertions.
std::unique_ptr<query::query_service<2>> crash_recover_compare(
    backend b, const char* point, fault::fault_spec spec,
    const std::string& dir, std::size_t* acked_out = nullptr) {
  const service_config cfg = base_cfg(b, dir);
  const traffic_plan t = make_traffic(8);
  std::size_t acked = 0;
  {
    auto svc = std::make_unique<query::query_service<2>>(cfg);
    svc->bootstrap(initial_points(48));
    fault::scoped_fault f(point, spec);
    acked = run_until_crash(*svc, t);
    EXPECT_LT(acked, t.batches.size()) << "fault at " << point
                                       << " never fired";
    // Crash: drop the service with no orderly traffic wind-down.
  }
  if (acked_out) *acked_out = acked;

  auto ref = reference_from_log(dir, cfg);
  auto rec = query::query_service<2>::recover(dir, cfg);

  auto a = rec->gather();
  auto e = ref->gather();
  std::sort(a.begin(), a.end());
  std::sort(e.begin(), e.end());
  EXPECT_EQ(a, e);
  EXPECT_EQ(rec->size(), ref->size());
  EXPECT_GT(rec->stats().recovered_epochs, 0u);

  const auto probes = probe_batch();
  const auto got = rec->execute(probes);
  const auto want = ref->execute(probes);
  expect_identical_responses(got.responses, want.responses);
  ref->close();
  return rec;
}

class CrashMatrix : public ::testing::TestWithParam<backend> {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

}  // namespace

TEST_P(CrashMatrix, KillAtLogAppend) {
  const std::string dir = fresh_dir();
  fault::fault_spec spec;
  spec.action = fault::fault_action::kill;
  spec.nth = 4;  // bootstrap genesis is append 1; dies on write batch 3
  std::size_t acked = 0;
  auto rec = crash_recover_compare(GetParam(), fault::kOplogAppend, spec, dir,
                                   &acked);
  // The fault fired before the group touched the file: with
  // sync_policy::every_commit, recovery holds exactly the acked batches.
  expect_resident(*rec, mirror_after(make_traffic(8), 48, acked));
  // The recovered service is a serving primary again.
  rec->execute(make_traffic(8).batches[acked]);
  rec->close();
  remove_dir(dir);
}

TEST_P(CrashMatrix, TornWriteAtLogFile) {
  const std::string dir = fresh_dir();
  fault::fault_spec spec;
  spec.action = fault::fault_action::torn_write;
  spec.torn_keep_bytes = 5;  // cut inside the frame length field
  spec.nth = 3;              // genesis frame + batch 1 land; batch 2 tears
  auto rec =
      crash_recover_compare(GetParam(), fault::kOplogFileWrite, spec, dir);
  // The torn trailing frame was salvaged away and counted. (The exact
  // recovered epoch depends on whether a rebalance group also landed in
  // the log before the tear; byte-identity vs the salvaged-log
  // reference above is the authoritative check.)
  EXPECT_EQ(rec->stats().truncated_groups, 1u);
  EXPECT_GE(rec->stats().recovered_epochs, 2u);  // at least genesis + batch 1
  rec->close();
  remove_dir(dir);
}

TEST_P(CrashMatrix, KillAtLaneExecute) {
  const std::string dir = fresh_dir();
  fault::fault_spec spec;
  spec.action = fault::fault_action::kill;
  spec.nth = 5;  // mid-stream lane sub-batch
  // The group was already durably logged when the lane died, so the
  // recovered state legitimately CONTAINS the failed batch — exactly
  // what the log says committed. The salvaged-log reference agrees by
  // construction; byte-identity is the whole assertion here.
  auto rec = crash_recover_compare(GetParam(), fault::kLaneExecute, spec, dir);
  rec->close();
  remove_dir(dir);
}

TEST_P(CrashMatrix, KillAtCheckpointSerialize) {
  const std::string dir = fresh_dir();
  service_config cfg = base_cfg(GetParam(), dir);
  cfg.checkpoint_every = 2;
  const traffic_plan t = make_traffic(8);
  std::vector<point<2>> pre_crash;
  std::vector<query::response<2>> want;
  const auto probes = probe_batch();
  {
    auto svc = std::make_unique<query::query_service<2>>(cfg);
    svc->bootstrap(initial_points(48));
    fault::fault_spec spec;
    spec.action = fault::fault_action::kill;
    spec.nth = 1;  // first checkpoint attempt dies
    fault::scoped_fault f(fault::kCheckpointSerialize, spec);
    // A dying checkpoint is contained: every batch still commits.
    ASSERT_EQ(run_until_crash(*svc, t), t.batches.size());
    const auto st = svc->stats();
    EXPECT_GE(st.checkpoint_errors, 1u);
    EXPECT_GE(st.checkpoints, 1u);  // later cadence points succeeded
    pre_crash = svc->gather();
    std::sort(pre_crash.begin(), pre_crash.end());
    want = svc->execute(probes).responses;
  }
  // Recovery = newest good checkpoint + log tail. The tree is rebuilt,
  // not replayed from genesis, so rows compare canonically.
  auto rec = query::query_service<2>::recover(dir, cfg);
  expect_resident(*rec, pre_crash);
  const auto got = rec->execute(probes);
  testutil::expect_same_responses<2>(probes, got.responses, want);
  EXPECT_GT(rec->stats().recovered_epochs, 0u);
  rec->close();
  remove_dir(dir);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CrashMatrix,
                         ::testing::Values(backend::kdtree, backend::zdtree,
                                           backend::bdltree),
                         [](const auto& info) {
                           return std::string(
                               query::backend_name(info.param));
                         });

namespace {

class RecoveryEdge : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

}  // namespace

// Service-level torn-tail edge cases: a clean durable run, then the file
// is cut (a) at the exact last frame boundary — zero-length tail, no
// truncated groups, (b) inside the trailing checksum, (c) inside the
// frame length field. Recovery salvages the complete-frame prefix and
// matches a replay reference of the same prefix.
TEST_F(RecoveryEdge, TornTailCutsSalvageCompletePrefix) {
  const std::string dir = fresh_dir();
  const service_config cfg = base_cfg(backend::kdtree, dir);
  const traffic_plan t = make_traffic(4);
  {
    query::query_service<2> svc(cfg);
    svc.bootstrap(initial_points(32));
    for (const auto& b : t.batches) svc.execute(b);
    svc.close();
  }
  const std::string path = dir + "/oplog.pgol";
  const auto full = slurp(path);
  constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8;
  // Walk the framing to find every frame boundary.
  std::vector<std::size_t> bounds{kHeaderSize};
  std::size_t off = kHeaderSize;
  while (off + 4 <= full.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, full.data() + off, 4);
    off += std::size_t{4} + len + 8;
    bounds.push_back(off);
  }
  ASSERT_EQ(bounds.back(), full.size());
  ASSERT_EQ(bounds.size(), 1 + 5u);  // genesis + 4 write batches

  struct cut_case {
    std::size_t keep;
    std::uint64_t want_head;
    std::uint64_t want_truncated;
    const char* what;
  };
  const cut_case cases[] = {
      {bounds[4], 4, 0, "zero-length tail at the last frame boundary"},
      {full.size() - 4, 4, 1, "cut inside the trailing checksum"},
      {bounds[3] + 2, 3, 1, "cut inside a frame length field"},
      {bounds[2] + (bounds[3] - bounds[2]) / 2, 2, 1, "cut mid-payload"},
  };
  for (const auto& c : cases) {
    spit(path, {full.begin(), full.begin() + c.keep});
    auto ref = reference_from_log(dir, cfg);
    auto rec = query::query_service<2>::recover(dir, cfg);
    EXPECT_EQ(rec->stats().recovered_epochs, c.want_head) << c.what;
    EXPECT_EQ(rec->stats().truncated_groups, c.want_truncated) << c.what;
    auto a = rec->gather();
    auto e = ref->gather();
    std::sort(a.begin(), a.end());
    std::sort(e.begin(), e.end());
    EXPECT_EQ(a, e) << c.what;
    const auto probes = probe_batch();
    expect_identical_responses(rec->execute(probes).responses,
                               ref->execute(probes).responses);
    rec->close();
    ref->close();
  }
  remove_dir(dir);
}

TEST_F(RecoveryEdge, RecoverEmptyDirectoryServesFresh) {
  const std::string dir = fresh_dir();
  const service_config cfg = base_cfg(backend::bdltree, dir);
  auto rec = query::query_service<2>::recover(dir, cfg);
  EXPECT_EQ(rec->size(), 0u);
  EXPECT_EQ(rec->stats().recovered_epochs, 0u);
  // And it is durable from here: write, drop, recover again.
  rec->bootstrap(initial_points(16));
  rec->execute(make_traffic(1).batches[0]);
  rec->close();
  rec.reset();
  auto rec2 = query::query_service<2>::recover(dir, cfg);
  EXPECT_EQ(rec2->stats().recovered_epochs, 2u);  // genesis + 1 batch
  EXPECT_EQ(rec2->size(), 16u + 12u);
  rec2->close();
  remove_dir(dir);
}

TEST_F(RecoveryEdge, RecoveredServiceContinuesDurably) {
  const std::string dir = fresh_dir();
  service_config cfg = base_cfg(backend::zdtree, dir);
  cfg.checkpoint_every = 3;
  const traffic_plan t = make_traffic(8);
  {
    query::query_service<2> svc(cfg);
    svc.bootstrap(initial_points(32));
    for (std::size_t b = 0; b < 4; ++b) svc.execute(t.batches[b]);
    svc.close();
  }
  auto rec = query::query_service<2>::recover(dir, cfg);
  const std::uint64_t first_target = rec->stats().recovered_epochs;
  EXPECT_EQ(first_target, 5u);  // genesis + 4 batches
  for (std::size_t b = 4; b < 8; ++b) rec->execute(t.batches[b]);
  const auto want = mirror_after(t, 32, 8);
  expect_resident(*rec, want);
  rec->close();
  rec.reset();
  auto rec2 = query::query_service<2>::recover(dir, cfg);
  EXPECT_EQ(rec2->stats().recovered_epochs, 9u);
  expect_resident(*rec2, want);
  rec2->close();
  remove_dir(dir);
}

// A durable-log append failure is contained: the group's tickets fail,
// later writes fail fast, reads keep serving — and the service never
// acks a write the log did not commit.
TEST_F(RecoveryEdge, LogAppendFailureFailsWritesKeepsReads) {
  const std::string dir = fresh_dir();
  const service_config cfg = base_cfg(backend::kdtree, dir);
  query::query_service<2> svc(cfg);
  svc.bootstrap(initial_points(32));
  const traffic_plan t = make_traffic(3);
  svc.execute(t.batches[0]);
  {
    fault::fault_spec spec;
    spec.nth = 1;  // next append throws
    fault::scoped_fault f(fault::kOplogAppend, spec);
    EXPECT_THROW(svc.execute(t.batches[1]), std::exception);
  }
  // Latched: writes fail fast even with the fault gone (the fail-fast
  // rejection does not re-count — only the real append failure does) …
  EXPECT_THROW(svc.execute(t.batches[2]), std::exception);
  EXPECT_GE(svc.stats().log_append_errors, 1u);
  // … while reads still serve, and the resident set shows exactly the
  // acked prefix.
  const auto rows = svc.execute(probe_batch());
  EXPECT_EQ(rows.responses.size(), probe_batch().size());
  expect_resident(svc, mirror_after(t, 32, 1));
  svc.close();
  remove_dir(dir);
}

// ---- replica self-healing --------------------------------------------------

namespace {

class ReplicaHealing : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

}  // namespace

// A replica forced off the retained ring (checkpoint compaction
// truncated the log below its position) resyncs from the checkpoint
// instead of dying with a terminal replay gap.
TEST_F(ReplicaHealing, RingEvictionResyncsFromCheckpoint) {
  const std::string dir = fresh_dir();
  const service_config cfg = base_cfg(backend::bdltree, dir);
  query::query_service<2> primary(cfg);
  primary.bootstrap(initial_points(40));
  const traffic_plan t = make_traffic(6);
  for (std::size_t b = 0; b < 3; ++b) primary.execute(t.batches[b]);
  // Checkpoint + compact: epochs 1..4 leave the ring and the file.
  ASSERT_TRUE(primary.checkpoint_now());
  for (std::size_t b = 3; b < 6; ++b) primary.execute(t.batches[b]);

  // The replica starts at epoch 0 — below the compaction point.
  query::replica_set<2> replicas(primary.log(), cfg, 1,
                                 /*start_tails=*/false, dir);
  replicas.pump();
  EXPECT_FALSE(replicas.tail_failed()) << replicas.tail_error();
  EXPECT_EQ(replicas.resyncs(0), 1u);
  EXPECT_EQ(replicas.health(0), query::replica_health::healthy);
  EXPECT_EQ(replicas.replica(0).replay_error_count(), 0u);
  EXPECT_EQ(replicas.applied_epoch(0), primary.log()->head());

  auto a = replicas.replica(0).gather();
  auto e = primary.gather();
  std::sort(a.begin(), a.end());
  std::sort(e.begin(), e.end());
  EXPECT_EQ(a, e);
  // Canonical row equality (checkpoint-rebuilt tree vs incremental).
  const auto probes = probe_batch();
  testutil::expect_same_responses<2>(
      probes, replicas.replica(0).execute(probes).responses,
      primary.execute(probes).responses);
  EXPECT_GT(replicas.total_resyncs(), 0u);
  replicas.close();
  primary.close();
  remove_dir(dir);
}

// A replay error (injected at replica.apply) diverges the replica; with
// a checkpoint source it heals by rebootstrapping and re-replaying.
TEST_F(ReplicaHealing, ReplayDivergenceHealsFromCheckpoint) {
  const std::string dir = fresh_dir();
  const service_config cfg = base_cfg(backend::kdtree, dir);
  query::query_service<2> primary(cfg);
  primary.bootstrap(initial_points(40));
  const traffic_plan t = make_traffic(4);
  for (std::size_t b = 0; b < 2; ++b) primary.execute(t.batches[b]);

  // The replica catches up while the log is still fully retained, so the
  // injected fault lands in ordinary tail replay — not in a gap resync.
  query::replica_set<2> replicas(primary.log(), cfg, 1,
                                 /*start_tails=*/false, dir);
  replicas.pump();
  ASSERT_FALSE(replicas.tail_failed()) << replicas.tail_error();
  ASSERT_EQ(replicas.resyncs(0), 0u);

  ASSERT_TRUE(primary.checkpoint_now());
  for (std::size_t b = 2; b < 4; ++b) primary.execute(t.batches[b]);
  {
    fault::fault_spec spec;
    spec.nth = 2;  // one replayed record apply throws, once
    fault::scoped_fault f(fault::kReplicaApply, spec);
    replicas.pump();
  }
  EXPECT_FALSE(replicas.tail_failed()) << replicas.tail_error();
  EXPECT_EQ(replicas.health(0), query::replica_health::healthy);
  EXPECT_GE(replicas.resyncs(0), 1u);
  auto a = replicas.replica(0).gather();
  auto e = primary.gather();
  std::sort(a.begin(), a.end());
  std::sort(e.begin(), e.end());
  EXPECT_EQ(a, e);
  replicas.close();
  primary.close();
  remove_dir(dir);
}

// Without a checkpoint source the same gap is terminal: the replica is
// quarantined and the router degrades every read to the primary.
TEST_F(ReplicaHealing, GapWithoutSourceQuarantinesAndRouterDegrades) {
  const std::string dir = fresh_dir();
  const service_config cfg = base_cfg(backend::kdtree, dir);
  query::query_service<2> primary(cfg);
  primary.bootstrap(initial_points(40));
  const traffic_plan t = make_traffic(4);
  for (std::size_t b = 0; b < 2; ++b) primary.execute(t.batches[b]);
  ASSERT_TRUE(primary.checkpoint_now());
  primary.execute(t.batches[2]);

  query::replica_set<2> replicas(primary.log(), cfg, 1,
                                 /*start_tails=*/false);  // no source
  replicas.pump();
  EXPECT_TRUE(replicas.tail_failed());
  EXPECT_EQ(replicas.health(0), query::replica_health::quarantined);
  EXPECT_EQ(replicas.quarantined(), 1u);

  query::replica_router<2> router(primary, replicas, primary.log(),
                                  /*max_epoch_lag=*/1 << 20);
  const auto res = router.execute(probe_batch());
  EXPECT_EQ(res.responses.size(), probe_batch().size());
  const auto rs = router.stats();
  EXPECT_EQ(rs.reads_to_replicas, 0u);
  EXPECT_EQ(rs.reads_to_primary, 1u);
  EXPECT_EQ(rs.fallbacks, 1u);

  const auto metrics = query::replication_metrics_text<2>(
      replicas, *primary.log(), &rs);
  EXPECT_NE(metrics.find("pargeo_replicas_quarantined 1"), std::string::npos);
  EXPECT_NE(metrics.find("pargeo_replica_health{replica=\"0\"} 3"),
            std::string::npos);
  replicas.close();
  primary.close();
  remove_dir(dir);
}

// ---- request deadlines -----------------------------------------------------

namespace {

class Deadlines : public ::testing::Test {};

}  // namespace

TEST_F(Deadlines, ExpiredBatchShedsWithTimedOutCompletion) {
  service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  query::query_service<2> svc(cfg);
  svc.bootstrap(initial_points(32));

  // 1 ns relative deadline: expired long before the drain forms a group.
  auto doomed = svc.submit_with_deadline(probe_batch(), 1);
  const auto r = doomed.get();
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.responses.empty());
  EXPECT_EQ(svc.stats().deadline_expired, probe_batch().size());
  EXPECT_NE(svc.metrics_text().find("pargeo_deadline_expired_total"),
            std::string::npos);

  // A generous deadline executes normally.
  auto fine = svc.submit_with_deadline(probe_batch(), 5'000'000'000ull);
  const auto ok = fine.get();
  EXPECT_FALSE(ok.timed_out);
  EXPECT_EQ(ok.responses.size(), probe_batch().size());

  // Writes shed the same way — and shed writes are NOT applied.
  std::vector<request<2>> w{request<2>::make_insert(P(0.5, 0.5))};
  const auto shed = svc.submit_with_deadline(w, 1).get();
  EXPECT_TRUE(shed.timed_out);
  EXPECT_EQ(svc.size(), 32u);
  svc.close();
}

TEST_F(Deadlines, ConfigDefaultDeadlineAppliesToSubmit) {
  service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 1;
  cfg.policy = shard_policy::hash;
  cfg.deadline_ns = 1;  // every plain submit() inherits a 1 ns deadline
  query::query_service<2> svc(cfg);
  svc.bootstrap(initial_points(16));
  const auto r = svc.submit(probe_batch()).get();
  EXPECT_TRUE(r.timed_out);
  EXPECT_GT(svc.stats().deadline_expired, 0u);
  svc.close();
}
